"""Fig. 6: the loop-chunking cost-model crossover.

The paper sweeps the number of elements per object for "a simple loop"
and shows (a) the empirical speedup of the chunked transform over the
naive one and (b) the cost model's predicted break-even density (~730
elements/object) — and that the two agree.

Here the "empirical" line comes from replaying the loop per-access
through the TrackFM runtime (boundary checks, locality guards, chunk
setup — all the real accounting), and the model line from
:class:`ChunkingCostModel`.
"""

from __future__ import annotations

from typing import List

from repro.aifm.pool import PoolConfig
from repro.bench.harness import ExperimentResult
from repro.compiler.cost_model import ChunkingCostModel, LoopShape
from repro.machine.cache import AlwaysHitCache
from repro.machine.costs import AccessKind
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.units import KB, MB

#: Loop body cost per element in the microloop.
BODY = 15.0


def _runtime() -> TrackFMRuntime:
    config = PoolConfig(object_size=4 * KB, local_memory=2 * MB, heap_size=8 * MB)
    return TrackFMRuntime(config, cache=AlwaysHitCache())


def _empirical_speedup(elements_per_object: int) -> float:
    """Replay one object's worth of iterations, naive vs chunked.

    The object is pre-localized (the paper's Fig. 6 isolates guard
    overheads, not fetch costs).
    """
    elem_size = max(1, (4 * KB) // elements_per_object)
    n = elements_per_object

    naive_rt = _runtime()
    ptr = naive_rt.tfm_malloc(4 * KB)
    naive_rt.access(ptr, AccessKind.READ)  # pre-localize (slow path once)
    naive_cycles = 0.0
    for i in range(n):
        naive_cycles += naive_rt.access(
            ptr + i * elem_size, AccessKind.READ, size=elem_size
        ) - (naive_rt.costs.local_access - BODY)

    chunk_rt = _runtime()
    cptr = chunk_rt.tfm_malloc(4 * KB)
    chunk_rt.access(cptr, AccessKind.READ)
    chunk_cycles = chunk_rt.chunk_begin(stream=0)
    for i in range(n):
        chunk_cycles += chunk_rt.chunk_access(
            cptr + i * elem_size, AccessKind.READ, stream=0
        ) - (chunk_rt.costs.local_access - BODY)
    chunk_rt.chunk_end(stream=0)

    if chunk_cycles <= 0:
        return 0.0
    return naive_cycles / chunk_cycles


def fig06(densities: List[int] = None) -> ExperimentResult:
    """Empirical vs predicted chunking benefit as density varies."""
    if densities is None:
        densities = [64, 128, 256, 384, 512, 640, 704, 736, 768, 896, 1024]
    result = ExperimentResult(
        "fig06",
        "Loop chunking cost model: speedup vs elements per object",
        "elements/object",
        densities,
        "speedup vs naive transform (>1 favours chunking)",
    )
    model = ChunkingCostModel(object_size=4 * KB)
    empirical = [_empirical_speedup(d) for d in densities]
    predicted = [
        model.predicted_speedup(
            LoopShape(iterations_per_entry=d, elem_size=max(1, 4 * KB // d)),
            body_cycles=BODY,
        )
        for d in densities
    ]
    result.add_series("empirical", empirical)
    result.add_series("model", predicted)
    crossover = model.density_threshold()
    result.note(f"model crossover at d* = {crossover:.0f} elements/object (paper: ~730)")
    return result
