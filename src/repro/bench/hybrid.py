"""Adaptive-hybrid benchmark + baseline gate: ``python -m repro.bench hybrid``.

Sweeps the adaptive hybrid data plane (docs/hybrid.md) against *both*
static tiers — a pure TrackFM object runtime and a pure kernel-paging
runtime, each given the adaptive runtime's whole local-memory budget —
across a local-memory-fraction × workload matrix:

* ``dense``  — repeated fine-stride sweeps of a small arena (paging's
  best case: faults amortize over reuse, hits are guard-free);
* ``sparse`` — scattered one-object probes over a large arena (object
  fetch's best case: no I/O amplification);
* ``phase``  — :class:`~repro.workloads.phase.PhaseShiftWorkload`, the
  mixed-density case neither static placement serves well.

Every cell is a deterministic replay, so the recorded reports are exact
(``==``, no tolerance) like the other baseline gates.  On top of the
bit-exact compare, ``--check`` enforces the adaptive plane's acceptance
bar from the measured numbers themselves: adaptive cycles must be
within ``TOLERANCE`` of the best static tier on **every** cell, and
must beat both statics outright on at least one mixed-density cell::

    python -m repro.bench hybrid            # print the matrix
    python -m repro.bench hybrid --record   # (re)write baselines
    python -m repro.bench hybrid --check    # gate (CI runs this)

Baselines live in ``benchmarks/baselines/BENCH_hybrid_<workload>.json``.
Re-record after an intentional selector/cost-model change and commit
the diff.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.aifm.pool import PoolConfig
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.hybrid.runtime import AdaptiveHybridRuntime
from repro.hybrid.selector import SelectorConfig
from repro.machine.costs import AccessKind
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import BASE_PAGE
from repro.workloads.phase import PhaseShiftWorkload

OBJECT_SIZE = 256
ELEM = 8
SEED = 9

#: Fraction of the workload arena granted as local memory per cell; all
#: pressured — an online policy's payoff is steady state, and a run
#: whose arena fits local memory is all warmup and no steady state.
MEMORY_FRACTIONS = (0.25, 0.5, 0.75)

#: Adaptive cells must land within this factor of the best static tier.
TOLERANCE = 1.15

#: Reactive selector for the sweep: short epochs bound the per-phase
#: warmup on the wrong tier, and a small hysteresis band lets the phase
#: workload's density flips be tracked within a couple of epochs.
EPOCH_ACCESSES = 32
SELECTOR = SelectorConfig(hysteresis=0.05, min_accesses=4)

DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"

_LCG_MUL = 2654435761
_LCG_ADD = 40503


# -- the workload streams -----------------------------------------------------


DENSE_ARENA = 64 * 1024
DENSE_PASSES = 64
SPARSE_ARENA = 64 * 1024
SPARSE_PROBES = 4096


def _dense_stream() -> Iterator[Tuple[int, AccessKind]]:
    """Fine-stride sweeps: write pass, then read passes (steady reuse)."""
    for sweep in range(DENSE_PASSES):
        kind = AccessKind.WRITE if sweep == 0 else AccessKind.READ
        for off in range(0, DENSE_ARENA, 64):
            yield off, kind


def _sparse_stream() -> Iterator[Tuple[int, AccessKind]]:
    """LCG-scattered probes of one object per page: a tiny object
    working set strewn across many pages — object fetch's best case."""
    n_pages = SPARSE_ARENA // BASE_PAGE
    state = SEED & 0xFFFFFFFF
    for _ in range(SPARSE_PROBES):
        state = (state * _LCG_MUL + _LCG_ADD) & 0xFFFFFFFF
        yield (state % n_pages) * BASE_PAGE, AccessKind.READ


_PHASE = PhaseShiftWorkload(
    n_regions=8,
    region_bytes=4096,
    dense_stride=64,
    n_phases=6,
    dense_passes=16,
    sparse_probes=12,
    seed=SEED,
)

WORKLOADS: Dict[str, Tuple[int, Callable[[], Iterator[Tuple[int, AccessKind]]]]] = {
    "dense": (DENSE_ARENA, _dense_stream),
    "sparse": (SPARSE_ARENA, _sparse_stream),
    "phase": (_PHASE.arena_bytes, _PHASE.accesses),
}

#: Cells where neither static placement fits the whole run — the ones
#: the adaptive plane must win outright on at least one of.
MIXED_WORKLOADS = ("phase",)


# -- the three engines --------------------------------------------------------


def _replay(access: Callable[[int, AccessKind], float],
            stream: Iterator[Tuple[int, AccessKind]]) -> int:
    checksum = 0
    for offset, kind in stream:
        access(offset, kind)
        checksum = (checksum * 31 + offset + 1) & 0xFFFFFFFF
    return checksum


def _run_objects(workload: str, local_memory: int) -> Tuple[float, int]:
    arena, stream = WORKLOADS[workload]
    runtime = TrackFMRuntime(
        PoolConfig(
            object_size=OBJECT_SIZE,
            local_memory=max(local_memory, OBJECT_SIZE),
            heap_size=arena,
        )
    )
    runtime.initialize()
    ptr = runtime.tfm_malloc(arena)
    checksum = _replay(
        lambda off, kind: runtime.access(ptr + off, kind, ELEM), stream()
    )
    return runtime.metrics.cycles, checksum


def _run_pages(workload: str, local_memory: int) -> Tuple[float, int]:
    arena, stream = WORKLOADS[workload]
    runtime = FastswapRuntime(
        FastswapConfig(
            local_memory=max(local_memory, BASE_PAGE), heap_size=arena
        )
    )
    base = runtime.allocate(arena)
    checksum = _replay(
        lambda off, kind: runtime.access(base + off, kind, size=ELEM), stream()
    )
    return runtime.metrics.cycles, checksum


def _run_adaptive(workload: str, local_memory: int) -> Tuple[float, int, Dict[str, int]]:
    arena, stream = WORKLOADS[workload]
    runtime = AdaptiveHybridRuntime(
        local_memory=max(local_memory, 2 * BASE_PAGE),
        heap_size=arena,
        object_size=OBJECT_SIZE,
        epoch_accesses=EPOCH_ACCESSES,
        selector_config=SELECTOR,
    )
    runtime.initialize()
    ptr = runtime.tfm_malloc(arena)
    checksum = _replay(
        lambda off, kind: runtime.access(ptr + off, kind, ELEM), stream()
    )
    counters = {
        "tier_switches": runtime.metrics.tier_switches,
        "objects_migrated": runtime.metrics.objects_migrated,
        "epochs": runtime.epochs,
    }
    return runtime.metrics.cycles, checksum, counters


# -- cells + reports ----------------------------------------------------------


def run_cell(workload: str, fraction: float) -> Dict[str, object]:
    """One (workload, local-memory-fraction) cell, all three engines."""
    arena, _ = WORKLOADS[workload]
    local_memory = max(2 * BASE_PAGE, int(arena * fraction))
    objects_cycles, objects_value = _run_objects(workload, local_memory)
    pages_cycles, pages_value = _run_pages(workload, local_memory)
    adaptive_cycles, adaptive_value, counters = _run_adaptive(
        workload, local_memory
    )
    best_static = min(objects_cycles, pages_cycles)
    return {
        "fraction": fraction,
        "local_memory": local_memory,
        "objects_cycles": round(objects_cycles, 3),
        "pages_cycles": round(pages_cycles, 3),
        "adaptive_cycles": round(adaptive_cycles, 3),
        "adaptive": counters,
        "values_equal": objects_value == pages_value == adaptive_value,
        "value": adaptive_value,
        "within_band": adaptive_cycles <= best_static * TOLERANCE,
        "wins_outright": adaptive_cycles < best_static,
    }


def measure(workload: str) -> Dict[str, object]:
    return {
        "bench": f"hybrid_{workload}",
        "workload": workload,
        "tolerance": TOLERANCE,
        "seed": SEED,
        "cells": {
            f"mem_{int(f * 100)}": run_cell(workload, f)
            for f in MEMORY_FRACTIONS
        },
    }


def baseline_path(baseline_dir: Path, workload: str) -> Path:
    return Path(baseline_dir) / f"BENCH_hybrid_{workload}.json"


def record_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> List[Path]:
    baseline_dir = Path(baseline_dir)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in benches or sorted(WORKLOADS):
        path = baseline_path(baseline_dir, name)
        path.write_text(json.dumps(measure(name), indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def check_baselines(
    baseline_dir: Path, benches: Optional[List[str]] = None
) -> Dict[str, object]:
    """Exact-compare against baselines, then enforce the acceptance bar.

    Two layers: the replay is a pure function of its seeds, so the
    reports must match bit-for-bit; and the matched reports must show
    the adaptive plane within the tolerance band of the best static
    tier on every cell, winning outright on at least one mixed cell.
    """
    names = benches or sorted(WORKLOADS)
    report: Dict[str, object] = {"benches": {}, "ok": True}
    mixed_win = False
    for name in names:
        path = baseline_path(Path(baseline_dir), name)
        entry: Dict[str, object] = {"baseline": str(path)}
        report["benches"][name] = entry  # type: ignore[index]
        if not path.exists():
            entry["status"] = "missing-baseline"
            entry["hint"] = "run: python -m repro.bench hybrid --record"
            report["ok"] = False
            continue
        baseline = json.loads(path.read_text())
        measured = measure(name)
        if measured != baseline:
            entry["status"] = "mismatch"
            entry["diff"] = _diff_cells(
                baseline.get("cells", {}), measured.get("cells", {})
            )
            report["ok"] = False
            continue
        out_of_band = [
            cell
            for cell, data in measured["cells"].items()  # type: ignore[union-attr]
            if not (data["within_band"] and data["values_equal"])
        ]
        if out_of_band:
            entry["status"] = "out-of-band"
            entry["cells"] = out_of_band
            report["ok"] = False
            continue
        if name in MIXED_WORKLOADS and any(
            data["wins_outright"]
            for data in measured["cells"].values()  # type: ignore[union-attr]
        ):
            mixed_win = True
        entry["status"] = "ok"
    if set(MIXED_WORKLOADS) & set(names) and not mixed_win:
        report["ok"] = False
        report["mixed_win"] = False
    return report


def _diff_cells(
    expected: Dict[str, object], got: Dict[str, object]
) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for cell in sorted(set(expected) | set(got)):
        e, g = expected.get(cell), got.get(cell)
        if e == g:
            continue
        if not isinstance(e, dict) or not isinstance(g, dict):
            out[cell] = {"expected": e, "got": g}
            continue
        out[cell] = {
            key: {"expected": e.get(key), "got": g.get(key)}
            for key in sorted(set(e) | set(g))
            if e.get(key) != g.get(key)
        }
    return out


# -- human-readable matrix ----------------------------------------------------


def curves_text() -> str:
    lines = [
        "hybrid: adaptive vs best-of-both-static "
        f"(object size {OBJECT_SIZE}, tolerance {TOLERANCE}x, seed {SEED})",
        "",
        f"{'workload':>8} {'mem%':>5} {'objects':>12} {'pages':>12} "
        f"{'adaptive':>12} {'switches':>9} {'verdict':>9}",
    ]
    for name in sorted(WORKLOADS):
        for fraction in MEMORY_FRACTIONS:
            cell = run_cell(name, fraction)
            verdict = (
                "wins"
                if cell["wins_outright"]
                else ("in-band" if cell["within_band"] else "OUT")
            )
            lines.append(
                f"{name:>8} {int(fraction * 100):>5} "
                f"{cell['objects_cycles']:>12.0f} {cell['pages_cycles']:>12.0f} "
                f"{cell['adaptive_cycles']:>12.0f} "
                f"{cell['adaptive']['tier_switches']:>9} {verdict:>9}"
            )
    return "\n".join(lines)


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench hybrid",
        description="Adaptive-hybrid matrix and its exact baseline gate.",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--record", action="store_true", help="measure and (re)write baselines"
    )
    mode.add_argument(
        "--check", action="store_true", help="gate against recorded baselines"
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help=f"baseline directory (default: {DEFAULT_BASELINE_DIR})",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(WORKLOADS),
        help="restrict to one workload (repeatable; default: all)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="also write the check report JSON here"
    )
    args = parser.parse_args(argv)

    if args.record:
        for path in record_baselines(args.baseline_dir, args.bench):
            print(f"recorded {path}")
        return 0
    if args.check:
        report = check_baselines(args.baseline_dir, args.bench)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        for name, entry in report["benches"].items():  # type: ignore[union-attr]
            status = entry["status"]
            line = f"hybrid_{name}: {status}"
            if status == "mismatch":
                line += f"  diff cells: {sorted(entry['diff'])}"
            if status == "out-of-band":
                line += f"  cells: {entry['cells']}"
            print(line, file=sys.stderr if status != "ok" else sys.stdout)
        if report.get("mixed_win") is False:
            print(
                "hybrid: adaptive never beat both statics on a mixed cell",
                file=sys.stderr,
            )
        return 0 if report["ok"] else 1

    print(curves_text())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
