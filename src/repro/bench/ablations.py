"""Ablations of TrackFM's design choices, plus the §5 extension studies.

The paper motivates several mechanisms without isolating them; these
experiments do the isolation:

* **object state table** (§3.2): TrackFM's flat metadata table saves
  one dependent memory reference per guard vs AIFM's two-level scheme;
* **prefetch depth** (§4.3): how deep the stride prefetcher's request
  pipeline must be before STREAM stops being latency-bound;
* **evacuator policy**: AIFM-style hotness (CLOCK) vs plain LRU;
* **chunk-setup sensitivity** (§3.4): how the Eq. 3 crossover moves
  with the per-loop-entry setup cost;
* **heap pruning** (§5 extension): profile-guided pinning of hot
  allocations elides guards outright;
* **hybrid placement** (§5 extension): kernel pages for the dense
  bucket array + TrackFM objects for items, on memcached.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.bench.harness import CPU_HZ, ExperimentResult
from repro.machine.costs import DEFAULT_COSTS
from repro.machine.scale import ScaleModel
from repro.net.backends import make_tcp_backend
from repro.sim.residency import ResidencySet
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime
from repro.aifm.pool import PoolConfig
from repro.units import GB, KB, MB
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.stream import StreamWorkload
from repro.workloads.zipf import ZipfGenerator

#: Extra cycles per fast-path guard when metadata needs AIFM's second
#: dependent reference instead of the state table's indexed load.
SECOND_REFERENCE_CYCLES = 36.0


def ablation_state_table() -> ExperimentResult:
    """With vs without the object state table (naive STREAM guards)."""
    working_set = 12 * MB
    result = ExperimentResult(
        "ablation_state_table",
        "Object state table: one metadata reference vs two (naive STREAM)",
        "configuration",
        ["with state table", "without (2-ref metadata)"],
        "cycles (lower is better)",
    )
    cycles: List[float] = []
    for extra in (0.0, SECOND_REFERENCE_CYCLES):
        costs = DEFAULT_COSTS.with_overrides(
            fast_guard_read_cached=DEFAULT_COSTS.fast_guard_read_cached + extra,
            fast_guard_write_cached=DEFAULT_COSTS.fast_guard_write_cached + extra,
        )
        rt = TrackFMRuntime(
            PoolConfig(
                object_size=4 * KB,
                local_memory=working_set // 2,
                heap_size=2 * working_set,
                costs=costs,
            )
        )
        wl = StreamWorkload(working_set)
        cycles.append(wl.run_trackfm(rt, GuardStrategy.NAIVE))
    result.add_series("total cycles", cycles)
    result.note(
        f"the table saves {100 * (cycles[1] / cycles[0] - 1):.0f}% on a "
        "fast-path-dominated run"
    )
    return result


def ablation_prefetch_depth(
    depths: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Per-object fetch cost vs prefetch pipeline depth (4 KB objects)."""
    link = make_tcp_backend().link
    result = ExperimentResult(
        "ablation_prefetch_depth",
        "Prefetch pipeline depth vs effective per-object fetch cost",
        "depth",
        list(depths),
        "cycles per 4KB object",
    )
    result.add_series(
        "fetch cycles", [link.pipelined_cycles(4 * KB, d) for d in depths]
    )
    wire = link.wire_cycles(4 * KB)
    result.note(f"bandwidth floor (pure wire time): {wire:.0f} cycles")
    return result


def ablation_evacuator_policy(
    local_fractions: Sequence[float] = (0.05, 0.1, 0.25, 0.5),
) -> ExperimentResult:
    """CLOCK (AIFM-style hotness) vs plain LRU under zipf object traffic."""
    n_objects = 4096
    n_accesses = 60_000
    gen = ZipfGenerator(n_objects, 1.05, seed=42)
    trace = gen.sample(n_accesses)
    result = ExperimentResult(
        "ablation_evacuator_policy",
        "Evacuator victim selection: CLOCK vs LRU (zipf 1.05 objects)",
        "local capacity [% of objects]",
        [f"{f:.0%}" for f in local_fractions],
        "miss rate",
    )
    for use_clock, label in ((True, "CLOCK (hot bits)"), (False, "LRU")):
        rates: List[float] = []
        for frac in local_fractions:
            rs = ResidencySet(max(1, int(n_objects * frac)), use_clock=use_clock)
            misses = sum(0 if rs.access(int(o)).hit else 1 for o in trace)
            rates.append(misses / n_accesses)
        result.add_series(label, rates)
    return result


def ablation_chunk_setup(
    setups: Sequence[float] = (3_000, 6_000, 12_700, 25_000, 50_000),
) -> ExperimentResult:
    """Eq. 3 crossover density as the chunk-setup cost varies."""
    result = ExperimentResult(
        "ablation_chunk_setup",
        "Cost-model crossover vs per-loop-entry chunk setup cost",
        "setup cycles",
        list(setups),
        "break-even elements/object",
    )
    result.add_series(
        "d*",
        [
            DEFAULT_COSTS.with_overrides(chunk_setup=s).chunking_crossover_density()
            for s in setups
        ],
    )
    result.note("the default (12.7K) reproduces the paper's ~730")
    return result


def ablation_heap_pruning() -> ExperimentResult:
    """Profile-guided pinning (§5 extension): guards elided, cycles saved.

    The probe program interleaves lookups into a small hot table with a
    scan of a large cold array — the MaPHeA-style case where the hot
    table should simply live in local memory.
    """
    from repro.analysis.profiler import profile_module
    from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig, TrackFMCompiler
    from repro.ir import IRBuilder, I64, PTR, Module
    from repro.ir.values import Constant
    from repro.sim.irrun import TrackFMProgram

    HOT = 64          # hot table: 64 entries, hit every iteration
    COLD = 8192       # cold array: one sequential touch each

    def build() -> Module:
        m = Module("pruning-probe")
        f = m.add_function("main", I64)
        entry, header, body, done = (
            f.add_block(n) for n in ("entry", "header", "body", "done")
        )
        b = IRBuilder(entry)
        hot = b.call(PTR, "malloc", [Constant(I64, HOT * 8)], name="hot")
        cold = b.call(PTR, "malloc", [Constant(I64, COLD * 8)], name="cold")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        s = b.phi(I64, name="s")
        b.condbr(b.icmp("slt", i, COLD), body, done)
        b.set_block(body)
        hv = b.load(I64, b.gep(hot, b.srem(i, HOT), 8))
        cv = b.load(I64, b.gep(cold, i, 8))
        s2 = b.add(s, b.add(hv, cv))
        i2 = b.add(i, 1)
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        s.add_incoming(Constant(I64, 0), entry)
        s.add_incoming(s2, body)
        b.set_block(done)
        b.ret(s)
        return m

    result = ExperimentResult(
        "ablation_heap_pruning",
        "Profile-guided heap pruning: hot table pinned local",
        "configuration",
        ["no pruning", "pruning (1KB pin budget)"],
        "cycles / guards executed",
    )
    profile = profile_module(build())
    cycles: List[float] = []
    guards: List[float] = []
    for budget in (0, 1024):
        module = build()
        config = CompilerConfig(
            object_size=4 * KB,
            chunking=ChunkingPolicy.NONE,
            pin_budget_bytes=budget,
        )
        compiled = TrackFMCompiler(config).compile(module, profile=profile)
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=1 * MB)
        )
        TrackFMProgram(compiled.module, rt).run("main")
        cycles.append(rt.metrics.cycles)
        guards.append(float(rt.metrics.total_guards))
    result.add_series("cycles", cycles)
    result.add_series("guards", guards)
    result.note(
        f"pruning saves {100 * (1 - cycles[1] / cycles[0]):.0f}% of cycles by "
        "eliding the hot table's guards"
    )
    return result


def ablation_chase_prefetch() -> ExperimentResult:
    """Pointer-chase prefetching (§5 extension) on a linked-list walk."""
    from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig, TrackFMCompiler
    from repro.machine.cache import AlwaysHitCache
    from repro.sim.irrun import TrackFMProgram

    # Reuse the bench-grade list builder from the test corpus shape:
    # 4096 nodes of 64 bytes, walked once, 16 KB local memory.
    from repro.ir import IRBuilder, I64, PTR, Module
    from repro.ir.values import Constant, null_ptr

    N, NODE = 4096, 64

    def build() -> Module:
        m = Module("chase-ablation")
        f = m.add_function("main", I64)
        entry, bh, bb, mid, wh, wb, done = (
            f.add_block(x) for x in ("entry", "bh", "bb", "mid", "wh", "wb", "done")
        )
        b = IRBuilder(entry)
        base = b.call(PTR, "malloc", [Constant(I64, N * NODE)], name="base")
        b.br(bh)
        b.set_block(bh)
        i = b.phi(I64, name="i")
        b.condbr(b.icmp("slt", i, N), bb, mid)
        b.set_block(bb)
        node = b.gep(base, i, NODE)
        b.store(i, node)
        i2 = b.add(i, 1)
        nxt = b.select(b.icmp("eq", i2, N), null_ptr(), b.gep(base, i2, NODE))
        b.store(nxt, b.gep(node, 1, 8))
        b.br(bh)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, bb)
        b.set_block(mid)
        b.br(wh)
        b.set_block(wh)
        p = b.phi(PTR, name="p")
        s = b.phi(I64, name="s")
        b.condbr(b.icmp("ne", p, null_ptr()), wb, done)
        b.set_block(wb)
        s2 = b.add(s, b.load(I64, p))
        nextp = b.load(PTR, b.gep(p, 1, 8))
        b.br(wh)
        p.add_incoming(base, mid)
        p.add_incoming(nextp, wb)
        s.add_incoming(Constant(I64, 0), mid)
        s.add_incoming(s2, wb)
        b.set_block(done)
        b.ret(s)
        return m

    result = ExperimentResult(
        "ablation_chase_prefetch",
        "Greedy pointer-chase prefetching on a linked-list walk",
        "configuration",
        ["plain guards", "chase prefetch"],
        "cycles / slow-path guards",
    )
    cycles: List[float] = []
    slow: List[float] = []
    for chase in (False, True):
        module = build()
        config = CompilerConfig(
            chunking=ChunkingPolicy.NONE, enable_chase_prefetch=chase
        )
        compiled = TrackFMCompiler(config).compile(module)
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=1 * MB),
            cache=AlwaysHitCache(),
        )
        TrackFMProgram(compiled.module, rt).run("main")
        cycles.append(rt.metrics.cycles)
        from repro.machine.costs import GuardKind

        slow.append(float(rt.metrics.guard_count(GuardKind.SLOW)))
    result.add_series("cycles", cycles)
    result.add_series("slow guards", slow)
    result.note(
        f"chase prefetching: {cycles[0] / cycles[1]:.2f}x whole-program "
        "(the walk phase alone benefits most)"
    )
    return result


def ablation_multisize(
    scale: ScaleModel = ScaleModel(factor=256),
) -> ExperimentResult:
    """Multiple object sizes (§3.2 future work) on the hashmap workload.

    One application, two access patterns: 4-byte random lookups (wants
    64 B objects) plus a streaming key trace (wants 4 KB).  A single
    compile-time size must compromise; per-site classes need not.
    """
    from repro.units import MB as _MB
    from repro.workloads.hashmap import HashmapWorkload

    # A trace-heavy pass: few point lookups, a large streamed key log —
    # the regime where the single-size compromise is visible (a
    # lookup-dominated mix is simply "64B everywhere"; see Fig. 9).
    working_set = 8 * _MB
    wl = HashmapWorkload(
        working_set=working_set,
        n_lookups=10_000,
        trace_bytes=8 * _MB,
    )
    local = working_set // 2
    del scale
    configs = ["64B everywhere", "4KB everywhere", "multi: 64B buckets + 4KB trace"]
    result = ExperimentResult(
        "ablation_multisize",
        "Single vs per-site object sizes (hashmap + streaming trace)",
        "configuration",
        configs,
        "cycles / bytes fetched",
    )
    runs = [
        wl.run_trackfm(object_size=64, local_memory=local),
        wl.run_trackfm(object_size=4 * KB, local_memory=local),
        wl.run_trackfm_multisize(64, 4 * KB, local),
    ]
    result.add_series("cycles", [r.cycles for r in runs])
    result.add_series(
        "bytes fetched", [float(r.metrics.bytes_fetched) for r in runs]
    )
    best_single = min(runs[0].cycles, runs[1].cycles)
    result.note(
        f"per-site classes beat the best single size by "
        f"{100 * (1 - runs[2].cycles / best_single):.0f}%"
    )
    return result


def ablation_offload() -> ExperimentResult:
    """Computation offload (§5 extension): remote reduce vs fetch-and-sum."""
    from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig, TrackFMCompiler
    from repro.ir import IRBuilder, I64, PTR, Module
    from repro.ir.values import Constant
    from repro.machine.cache import AlwaysHitCache
    from repro.sim.irrun import TrackFMProgram

    N = 32_768  # 256 KB summed once; 16 KB local

    def build() -> Module:
        m = Module("offload-ablation")
        f = m.add_function("main", I64)
        entry, header, body, done = (
            f.add_block(x) for x in ("entry", "header", "body", "done")
        )
        b = IRBuilder(entry)
        p = b.call(PTR, "malloc", [Constant(I64, N * 8)], name="p")
        b.br(header)
        b.set_block(header)
        i = b.phi(I64, name="i")
        s = b.phi(I64, name="s")
        b.condbr(b.icmp("slt", i, N), body, done)
        b.set_block(body)
        v = b.load(I64, b.gep(p, i, 8))
        s2 = b.add(s, v)
        i2 = b.add(i, 1)
        b.br(header)
        i.add_incoming(Constant(I64, 0), entry)
        i.add_incoming(i2, body)
        s.add_incoming(Constant(I64, 0), entry)
        s.add_incoming(s2, body)
        b.set_block(done)
        b.ret(s)
        return m

    result = ExperimentResult(
        "ablation_offload",
        "Near-data processing: offloaded reduce vs fetch-and-compute",
        "configuration",
        ["fetch + chunk + prefetch", "offloaded reduce"],
        "cycles / bytes fetched",
    )
    cycles: List[float] = []
    fetched: List[float] = []
    for offload in (False, True):
        module = build()
        config = CompilerConfig(
            chunking=ChunkingPolicy.COST_MODEL,
            enable_offload=offload,
            offload_threshold_bytes=64 * KB,
        )
        compiled = TrackFMCompiler(config).compile(module)
        rt = TrackFMRuntime(
            PoolConfig(object_size=4 * KB, local_memory=16 * KB, heap_size=1 * MB),
            cache=AlwaysHitCache(),
        )
        TrackFMProgram(compiled.module, rt, max_steps=10_000_000).run("main")
        cycles.append(rt.metrics.cycles)
        fetched.append(float(rt.metrics.bytes_fetched))
    result.add_series("cycles", cycles)
    result.add_series("bytes fetched", fetched)
    result.note(
        f"offload: {cycles[0] / cycles[1]:.1f}x faster, "
        f"{fetched[0] / max(fetched[1], 1):.0f}x less data moved"
    )
    return result


def ablation_hybrid_memcached(
    scale: ScaleModel = ScaleModel(factor=512),
    skews: Sequence[float] = (1.0, 1.1, 1.2, 1.3),
) -> ExperimentResult:
    """Hybrid placement (§5): pages for the bucket array, objects for items."""
    working_set = scale.bytes(12 * GB)
    local = scale.bytes(1 * GB)
    n = scale.count(100_000_000, floor=100_000)
    result = ExperimentResult(
        "ablation_hybrid_memcached",
        "memcached: hybrid kernel+compiler placement vs pure systems",
        "zipf skew",
        list(skews),
        "throughput (KOps/s)",
    )
    tfm_tp, fsw_tp, hyb_tp = [], [], []
    for skew in skews:
        wl = MemcachedWorkload(working_set=working_set, n_keys=n, n_ops=n, skew=skew)
        tfm_tp.append(wl.run_trackfm(64, local).throughput_kops(CPU_HZ))
        fsw_tp.append(wl.run_fastswap(local).throughput_kops(CPU_HZ))
        hyb_tp.append(wl.run_hybrid(64, local).throughput_kops(CPU_HZ))
    result.add_series("TrackFM", tfm_tp)
    result.add_series("Fastswap", fsw_tp)
    result.add_series("Hybrid", hyb_tp)
    result.note(
        "hybrid ~= TrackFM and well above Fastswap: page-backing the "
        "dense bucket array removes its guards at no amplification cost, "
        "but the items' share of local memory shrinks in exchange"
    )
    return result
