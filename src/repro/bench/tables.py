"""Tables 1, 2 and 4: guard/fault primitive costs and the system matrix."""

from __future__ import annotations

from repro.aifm.pool import PoolConfig
from repro.bench.harness import ExperimentResult
from repro.machine.cache import AlwaysHitCache, AlwaysMissCache
from repro.machine.costs import AccessKind
from repro.fastswap.runtime import FastswapConfig, FastswapRuntime
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import KB, MB


def _probe_runtime(cache) -> TrackFMRuntime:
    config = PoolConfig(object_size=4 * KB, local_memory=1 * MB, heap_size=4 * MB)
    return TrackFMRuntime(config, cache=cache)


def _force_slow_path_local(runtime: TrackFMRuntime, ptr: int) -> None:
    """Mark the object evacuating while resident: unsafe but local.

    This is the state AIFM's collection points create; the guard takes
    the slow path, but ``ensure_local`` hits, so the probe measures the
    guard alone — Table 1's "when an object is local" framing.
    """
    obj = runtime.pool.object_of_offset(0)
    meta = runtime.pool.meta(obj)
    runtime.pool._meta[obj] = meta.with_evacuating(True).word


def _guard_probe(cache_cls, kind: AccessKind, slow: bool) -> float:
    runtime = _probe_runtime(cache_cls())
    ptr = runtime.tfm_malloc(64)
    runtime.access(ptr, kind)  # first touch localizes the object
    if slow:
        _force_slow_path_local(runtime, ptr)
    return runtime.guards.guard(ptr, kind).cycles


def table1() -> ExperimentResult:
    """Table 1: fast vs slow path guard costs, cached vs uncached."""
    result = ExperimentResult(
        "table1",
        "TrackFM guard costs for a local object (cycles)",
        "guard type",
        [
            "fast-path read",
            "fast-path write",
            "slow-path read",
            "slow-path write",
        ],
        "median cycles",
    )
    for label, cache_cls in (("Cached", AlwaysHitCache), ("Uncached", AlwaysMissCache)):
        values = []
        for slow in (False, True):
            for kind in (AccessKind.READ, AccessKind.WRITE):
                values.append(_guard_probe(cache_cls, kind, slow))
        result.add_series(label, values)
    result.note("paper: fast 21/21 cached, 297/309 uncached; slow 144/159, 453/432")
    return result


def table2() -> ExperimentResult:
    """Table 2: TrackFM slow guards vs Fastswap faults, local vs remote."""
    result = ExperimentResult(
        "table2",
        "Primitive overheads: TrackFM vs Fastswap (cycles)",
        "event",
        [
            "Fastswap read fault",
            "Fastswap write fault",
            "TrackFM slow-path read guard",
            "TrackFM slow-path write guard",
        ],
        "median cycles",
    )
    fs = FastswapRuntime(FastswapConfig(local_memory=1 * MB, heap_size=4 * MB))
    local_costs = [
        fs.fault_probe(AccessKind.READ, remote=False),
        fs.fault_probe(AccessKind.WRITE, remote=False),
    ]
    remote_costs = [
        fs.fault_probe(AccessKind.READ, remote=True),
        fs.fault_probe(AccessKind.WRITE, remote=True),
    ]
    for kind in (AccessKind.READ, AccessKind.WRITE):
        # Local: uncached slow path on a resident object.
        local_costs.append(_guard_probe(AlwaysMissCache, kind, slow=True))
        # Remote: first-ever touch triggers the full fetch.
        fresh = _probe_runtime(AlwaysMissCache())
        ptr = fresh.tfm_malloc(64)
        remote_costs.append(fresh.guards.guard(ptr, kind).cycles)
    result.add_series("Local Cost", local_costs)
    result.add_series("Remote Cost", remote_costs)
    result.note(
        "paper: FS 1.3K/1.3K local, 34K/35K remote; TFM 453/432 local, 35K/35K remote"
    )
    return result


def table4() -> ExperimentResult:
    """Table 4: qualitative comparison matrix (1 = yes, 0 = no)."""
    systems = [
        ("Project Kona", 1, 0, 1, 0),
        ("AIFM", 0, 1, 1, 1),
        ("Fastswap", 1, 1, 0, 0),
        ("Infiniswap", 1, 1, 0, 0),
        ("DiLOS", 1, 1, 1, 0),
        ("TrackFM (this work)", 1, 1, 1, 1),
    ]
    result = ExperimentResult(
        "table4",
        "System comparison (1 = yes)",
        "system",
        [name for name, *_ in systems],
        "feature flags",
    )
    for i, feature in enumerate(
        [
            "Programmer Transparent?",
            "No custom hardware?",
            "Mitigates I/O Amplification?",
            "No OS Kernel Changes?",
        ]
    ):
        result.add_series(feature, [row[1 + i] for row in systems])
    return result
