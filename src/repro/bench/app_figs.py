"""Application figures: 8 (k-means), 14/15 (analytics), 16 (memcached), 17 (NAS)."""

from __future__ import annotations

from typing import List, Sequence

from repro.bench.harness import (
    CPU_HZ,
    DEFAULT_BENCH_SCALE,
    ExperimentResult,
    geomean,
)
from repro.compiler.pass_manager import PassContext, PassManager
from repro.compiler.optimize import O1Pipeline
from repro.compiler.pipeline import CompilerConfig
from repro.ir.instructions import Load, Store
from repro.machine.scale import ScaleModel
from repro.sim.interpreter import Interpreter
from repro.units import GB, KB, MB
from repro.workloads.analytics import AnalyticsChunking, AnalyticsWorkload, System
from repro.workloads.kmeans import ChunkMode, KMeansWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.nas import NAS_SUITE, NasModel, build_nas_ir

FRACTIONS = (0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


# -- Fig. 8: k-means -----------------------------------------------------------


def fig08(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    fractions: Sequence[float] = FRACTIONS,
) -> ExperimentResult:
    """Selective loop chunking on k-means (30 M points, 1 GB)."""
    n_points = scale.count(30_000_000, floor=50_000)
    wl = KMeansWorkload(n_points=n_points)
    result = ExperimentResult(
        "fig08",
        "k-means: chunk all loops vs high-density loops only",
        "local mem [% of 1GB]",
        [f"{f:.0%}" for f in fractions],
        "speedup vs baseline (no chunking)",
    )
    obj = 4 * KB
    for mode, label in (
        (ChunkMode.ALL_LOOPS, "all loops"),
        (ChunkMode.HIGH_DENSITY, "high-density loops only"),
    ):
        series: List[float] = []
        for frac in fractions:
            local = max(obj, int(wl.working_set * frac))
            series.append(wl.speedup_vs_baseline(mode, obj, local))
        result.add_series(label, series)
    result.note("paper: all-loops ~4x slowdown (0.25x); filtered ~2.5x speedup")
    return result


# -- Figs. 14/15: taxi analytics ------------------------------------------------


def fig14(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    fractions: Sequence[float] = FRACTIONS,
) -> ExperimentResult:
    """Analytics on TrackFM vs Fastswap vs AIFM (31 GB working set)."""
    working_set = scale.bytes(31 * GB)
    wl = AnalyticsWorkload(working_set=working_set)
    local_cycles, _ = wl.run_local()
    result = ExperimentResult(
        "fig14",
        "Analytics application: slowdown vs local-only (a) and event counts (b)",
        "local mem [% of 31GB]",
        [f"{f:.0%}" for f in fractions],
        "slowdown vs local-only / events (paper-scale, x10M)",
    )
    slow = {System.TRACKFM: [], System.FASTSWAP: [], System.AIFM: []}
    guards: List[float] = []
    faults: List[float] = []
    for frac in fractions:
        local = max(4096, int(working_set * frac))
        for system in slow:
            cycles, metrics = wl.run(system, local)
            slow[system].append(cycles / local_cycles)
            if system is System.TRACKFM:
                guards.append(
                    metrics.slow_path_guards * scale.factor / 1e7
                )
            elif system is System.FASTSWAP:
                faults.append(metrics.major_faults * scale.factor / 1e7)
    result.add_series("TrackFM", slow[System.TRACKFM])
    result.add_series("Fastswap", slow[System.FASTSWAP])
    result.add_series("AIFM", slow[System.AIFM])
    result.add_series("TrackFM guards (x10M)", guards)
    result.add_series("Fastswap faults (x10M)", faults)
    gap = slow[System.TRACKFM][0] / slow[System.AIFM][0]
    result.note(
        f"TrackFM within {100 * (gap - 1):.0f}% of AIFM at the lowest local "
        "memory (paper: within 10%)"
    )
    return result


def fig15(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    fractions: Sequence[float] = FRACTIONS,
) -> ExperimentResult:
    """Chunking policy on the analytics app (low-density aggregations)."""
    working_set = scale.bytes(31 * GB)
    wl = AnalyticsWorkload(working_set=working_set)
    local_cycles, _ = wl.run_local()
    result = ExperimentResult(
        "fig15",
        "Analytics: loop chunking policy vs slowdown",
        "local mem [% of 31GB]",
        [f"{f:.0%}" for f in fractions],
        "slowdown vs local-only",
    )
    for policy, label in (
        (AnalyticsChunking.BASELINE, "baseline"),
        (AnalyticsChunking.ALL_LOOPS, "all loops"),
        (AnalyticsChunking.HIGH_DENSITY, "high-density loops only"),
    ):
        series: List[float] = []
        for frac in fractions:
            local = max(4096, int(working_set * frac))
            cycles, _ = wl.run_trackfm(local, policy)
            series.append(cycles / local_cycles)
        result.add_series(label, series)
    result.note("paper: chunking the low-density aggregation loops hurts")
    return result


# -- Fig. 16: memcached ---------------------------------------------------------


def fig16(
    scale: ScaleModel = ScaleModel(factor=512),
    skews: Sequence[float] = (1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3),
) -> ExperimentResult:
    """memcached GET throughput / events / data moved vs zipf skew."""
    working_set = scale.bytes(12 * GB)
    local = scale.bytes(1 * GB)
    n_keys = scale.count(100_000_000, floor=100_000)
    n_ops = scale.count(100_000_000, floor=100_000)
    result = ExperimentResult(
        "fig16",
        "memcached: throughput, guard/fault counts, data transferred vs skew",
        "zipf skew",
        list(skews),
        "KOps/s / events (paper-scale, x100M) / GB moved (paper scale)",
    )
    tfm_tp, fsw_tp, local_tp = [], [], []
    tfm_ev, fsw_ev = [], []
    tfm_gb, fsw_gb = [], []
    object_size = 64
    for skew in skews:
        wl = MemcachedWorkload(
            working_set=working_set, n_keys=n_keys, n_ops=n_ops, skew=skew
        )
        tfm = wl.run_trackfm(object_size=object_size, local_memory=local)
        fsw = wl.run_fastswap(local_memory=local)
        loc = wl.run_local()
        tfm_tp.append(tfm.throughput_kops(CPU_HZ))
        fsw_tp.append(fsw.throughput_kops(CPU_HZ))
        local_tp.append(loc.throughput_kops(CPU_HZ))
        tfm_ev.append(tfm.metrics.slow_path_guards * scale.factor / 1e8)
        fsw_ev.append(fsw.metrics.major_faults * scale.factor / 1e8)
        tfm_gb.append(tfm.metrics.total_bytes_transferred * scale.factor / GB)
        fsw_gb.append(fsw.metrics.total_bytes_transferred * scale.factor / GB)
    result.add_series("TrackFM KOps/s", tfm_tp)
    result.add_series("Fastswap KOps/s", fsw_tp)
    result.add_series("All local KOps/s", local_tp)
    result.add_series("TrackFM slow guards (x100M)", tfm_ev)
    result.add_series("Fastswap faults (x100M)", fsw_ev)
    result.add_series("TrackFM data (GB)", tfm_gb)
    result.add_series("Fastswap data (GB)", fsw_gb)
    result.note("paper: 1.3-1.7x over Fastswap; 15x vs 66x working-set transfer")
    return result


# -- Fig. 17: NAS ----------------------------------------------------------------


def fig17a(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    local_fraction: float = 0.25,
) -> ExperimentResult:
    """NAS slowdowns at 25% local memory, Fastswap vs TrackFM."""
    names = [b.name for b in NAS_SUITE] + ["GeoM."]
    result = ExperimentResult(
        "fig17a",
        "NAS benchmarks at 25% local memory",
        "benchmark",
        names,
        "slowdown vs local-only",
    )
    fsw: List[float] = []
    tfm: List[float] = []
    for bench in NAS_SUITE:
        ws = bench.working_set(scale.factor)
        model = NasModel(bench, working_set=ws)
        local = int(ws * local_fraction)
        fsw.append(model.slowdown("fastswap", local))
        tfm.append(model.slowdown("trackfm", local))
    fsw.append(geomean(fsw))
    tfm.append(geomean(tfm))
    result.add_series("Fastswap", fsw)
    result.add_series("TrackFM", tfm)
    result.note("paper: TrackFM wins except FT (guard explosion + reuse)")
    return result


def _dynamic_mem_ops(module) -> int:
    """Executed loads+stores, via block counts from the interpreter."""
    counts = {}

    def hook(func, block_name):
        counts[block_name] = counts.get(block_name, 0) + 1

    Interpreter(module, block_hook=hook).run("main")
    total = 0
    func = module.get_function("main")
    for block in func.blocks:
        mems = sum(1 for i in block.instructions if isinstance(i, (Load, Store)))
        total += mems * counts.get(block.name, 0)
    return total


def fig17b(
    scale: ScaleModel = DEFAULT_BENCH_SCALE,
    local_fraction: float = 0.25,
) -> ExperimentResult:
    """FT/SP with O1 pre-optimization before the TrackFM passes.

    The memory-instruction reductions are *measured* by running the real
    O1 pipeline (mem2reg + folding + RLE + DCE) on unoptimized-style IR
    kernels and counting executed loads/stores.
    """
    result = ExperimentResult(
        "fig17b",
        "NAS FT/SP: effect of O1 pre-optimization",
        "benchmark",
        ["FT", "SP"],
        "slowdown vs local-only",
    )
    fsw, tfm, tfm_o1 = [], [], []
    reductions = {}
    for name in ("FT", "SP"):
        bench = next(b for b in NAS_SUITE if b.name == name)
        ws = bench.working_set(scale.factor)
        model = NasModel(bench, working_set=ws)
        local = int(ws * local_fraction)
        fsw.append(model.slowdown("fastswap", local))
        tfm.append(model.slowdown("trackfm", local, o1=False))
        tfm_o1.append(model.slowdown("trackfm", local, o1=True))
        # Measure the real reduction with the real passes.
        unopt = build_nas_ir(name, n=64)
        before = _dynamic_mem_ops(unopt)
        opt = build_nas_ir(name, n=64)
        ctx = PassContext(config=CompilerConfig())
        PassManager([O1Pipeline()]).run(opt, ctx)
        after = _dynamic_mem_ops(opt)
        reductions[name] = before / max(after, 1)
    result.add_series("FSwap", fsw)
    result.add_series("TFM", tfm)
    result.add_series("TFM/O1", tfm_o1)
    result.note(
        "measured O1 memory-instruction reductions: "
        + ", ".join(f"{k} {v:.1f}x" for k, v in reductions.items())
        + " (paper: FT 6x, SP 4x)"
    )
    return result
