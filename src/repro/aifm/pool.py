"""The unified object pool (TrackFM's abstract data structure, ADS).

§3.2: TrackFM extends AIFM's data-structure base class "with a unified
abstract data structure (ADS) that the compiler uses to capture all
remotable allocations ... a pool of objects that represent the total far
memory that an application can use."

The pool owns:

* the per-object metadata words (Fig. 3 formats) — the source of truth
  the TrackFM object state table is kept coherent with;
* the residency set (what is local, LRU/CLOCK with DerefScope pins);
* the evacuator (writeback accounting) and the remote backend;
* the metrics bundle every figure reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.aifm.evacuator import Evacuator
from repro.aifm.objectmeta import (
    ObjectMeta,
    UNSAFE_MASK,
    encode_local,
    encode_remote,
)
from repro.errors import (
    DataIntegrityError,
    FarMemoryUnavailableError,
    PointerError,
    RuntimeConfigError,
)
from repro.machine.costs import CostTable, DEFAULT_COSTS
from repro.net.backends import RemoteBackend, make_tcp_backend
from repro.sim.metrics import Metrics
from repro.sim.residency import ResidencySet
from repro.trace.tracer import NULL_TRACER
from repro.units import ceil_div, is_power_of_two, log2_exact


@dataclass
class PoolConfig:
    """Sizing and policy knobs for one object pool."""

    #: AIFM object (chunk) size in bytes; must be a power of two.
    object_size: int
    #: Bytes of local memory available for resident objects (the
    #: constraint the figures sweep as "% of working set").
    local_memory: int
    #: Total remotable heap size in bytes.
    heap_size: int
    #: Evacuation policy: CLOCK (AIFM-like hotness) vs plain LRU.
    use_clock: bool = True
    #: Evacuator knobs.
    writeback_depth: int = 8
    evac_sync_fraction: float = 0.25
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.object_size):
            raise RuntimeConfigError(
                f"object size must be a power of two, got {self.object_size}"
            )
        if self.local_memory < self.object_size:
            raise RuntimeConfigError("local memory smaller than one object")
        if self.heap_size < self.object_size:
            raise RuntimeConfigError("heap smaller than one object")

    @property
    def local_capacity_objects(self) -> int:
        return max(1, self.local_memory // self.object_size)

    @property
    def num_objects(self) -> int:
        return ceil_div(self.heap_size, self.object_size)


class ObjectPool:
    """All remotable objects of one application."""

    def __init__(
        self,
        config: PoolConfig,
        backend: Optional[RemoteBackend] = None,
        metrics: Optional[Metrics] = None,
        tracer=None,
    ) -> None:
        self.config = config
        self.backend = backend if backend is not None else make_tcp_backend()
        self.metrics = metrics if metrics is not None else Metrics()
        # A resilient backend flows its retry/drop counters into the
        # pool's metrics (unless the caller already wired its own).
        if self.backend.metrics is None:
            self.backend.metrics = self.metrics
        integrity = self.backend.integrity
        if integrity is not None and integrity.metrics is None:
            integrity.metrics = self.metrics
        #: Trace sink (disabled by default: one attribute check per event site).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Degraded-mode hook: when the remote tier is unavailable
        #: (:class:`FarMemoryUnavailableError` out of the backend), a
        #: non-None handler is called as ``handler(obj_id) -> stall
        #: cycles`` and the access proceeds locally instead of raising.
        self.degraded_handler: Optional[Callable[[int], float]] = None
        self.object_size = config.object_size
        self.object_shift = log2_exact(config.object_size)
        self.residency = ResidencySet(
            config.local_capacity_objects, use_clock=config.use_clock
        )
        self.evacuator = Evacuator(
            backend=self.backend,
            object_size=config.object_size,
            writeback_depth=config.writeback_depth,
            sync_fraction=config.evac_sync_fraction,
        )
        #: Metadata word per object id; starts in remote format ("not yet
        #: localized") — first touch is always a miss, as in AIFM.
        #: Built vectorized: remote word = REMOTE | size << 38 | obj_id.
        size_field = min(self.object_size, (1 << 16) - 1)
        base = np.uint64(encode_remote(0, size_field))
        self._meta = np.arange(config.num_objects, dtype=np.uint64)
        self._meta |= base  # in place: fast even for multi-GB heaps

    # -- metadata ---------------------------------------------------------

    @property
    def integrity(self):
        """The backend's integrity checker (None when verification is off)."""
        return self.backend.integrity

    def meta_word(self, obj_id: int) -> int:
        self._check_id(obj_id)
        return int(self._meta[obj_id])

    def meta(self, obj_id: int) -> ObjectMeta:
        word = self.meta_word(obj_id)
        integrity = self.backend.integrity
        if integrity is not None:
            return ObjectMeta(word, check=integrity.expected_check(obj_id))
        return ObjectMeta(word)

    def is_safe(self, obj_id: int) -> bool:
        """The fast-path test on the metadata word (Fig. 4b line 6)."""
        return (self.meta_word(obj_id) & UNSAFE_MASK) == 0

    def _check_id(self, obj_id: int) -> None:
        if not 0 <= obj_id < self.config.num_objects:
            raise PointerError(
                f"object id {obj_id} out of range [0, {self.config.num_objects})"
            )

    def _set_local(self, obj_id: int, dirty: bool) -> None:
        word = encode_local(
            (obj_id * self.object_size) & ((1 << 47) - 1),
            dirty=dirty,
            hot=True,
        )
        self._meta[obj_id] = word

    def _set_remote(self, obj_id: int) -> None:
        self._meta[obj_id] = encode_remote(
            obj_id, min(self.object_size, (1 << 16) - 1)
        )

    def object_of_offset(self, heap_offset: int) -> int:
        """Map a heap byte offset to its object id (a shift, §3.2)."""
        if heap_offset < 0 or heap_offset >= self.config.heap_size:
            raise PointerError(f"heap offset {heap_offset:#x} out of range")
        return heap_offset >> self.object_shift

    # -- the hot path ---------------------------------------------------

    def ensure_local(
        self, obj_id: int, write: bool = False, depth: int = 1
    ) -> Tuple[bool, float]:
        """Localize ``obj_id`` if needed; returns (was_local, cycles).

        The returned cycles cover only the *data movement* (fetch +
        synchronous share of writebacks); guard/fault CPU costs are the
        caller's business (they differ between TrackFM and Fastswap).
        """
        self._check_id(obj_id)
        outcome = self.residency.access(obj_id, write=write)
        cycles = 0.0
        if not outcome.hit:
            backend = self.backend
            try:
                if backend.integrity is None:
                    fetch_cycles = backend.fetch(self.object_size, depth=depth)
                else:
                    fetch_cycles = backend.fetch(
                        self.object_size, depth=depth, obj_id=obj_id
                    )
            except DataIntegrityError:
                # Quarantined: nothing trustworthy was fetched.  Unwind
                # the residency insert and surface — integrity failures
                # are correctness errors, never served degraded here
                # (the hybrid runtime's page tier is the degrade rung).
                for victim, _dirty in outcome.evicted:
                    self._set_remote(victim)
                self.residency.discard(obj_id)
                raise
            except FarMemoryUnavailableError:
                handler = self.degraded_handler
                if handler is None:
                    # Unwind the residency insert so pool state matches
                    # reality (nothing was fetched) before surfacing.
                    for victim, _dirty in outcome.evicted:
                        self._set_remote(victim)
                    self.residency.discard(obj_id)
                    raise
                # Degraded mode: serve the access from the local tier
                # (stale/zero-fill semantics are the handler's business);
                # charge its stall, count it, move no bytes.
                cycles += handler(obj_id)
                self.metrics.degraded_accesses += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.degrade("object", self.metrics.cycles, obj=obj_id)
            else:
                cycles += fetch_cycles
                self.metrics.remote_fetches += 1
                self.metrics.bytes_fetched += self.object_size
                tracer = self.tracer
                if tracer.enabled:
                    tracer.fetch(
                        self.object_size, fetch_cycles, self.metrics.cycles, obj_id=obj_id
                    )
                # The remote tier just answered (any open breaker has
                # closed): re-drive writebacks deferred while it was down.
                if self.evacuator.has_deferred:
                    cycles += self.evacuator.drain_deferred(self.metrics)
        for victim, _dirty in outcome.evicted:
            self._set_remote(victim)
        cycles += self.evacuator.process(outcome.evicted, self.metrics)
        if outcome.evicted:
            tracer = self.tracer
            if tracer.enabled:
                tracer.evict(
                    len(outcome.evicted) * self.object_size,
                    self.metrics.cycles,
                    n=len(outcome.evicted),
                    dirty=sum(1 for _v, d in outcome.evicted if d),
                )
        self._set_local(obj_id, dirty=self.residency.is_dirty(obj_id))
        return outcome.hit, cycles

    def prefetch(self, obj_id: int, depth: Optional[int] = None) -> float:
        """Asynchronously localize ``obj_id``; returns app-visible cycles.

        With ``depth=None`` (deep stride pipelines) the application only
        pays wire (bandwidth) time.  A finite ``depth`` models shallow
        runahead — e.g. greedy pointer-chase prefetching can only see
        one node ahead (``depth=2``), so a share of the round-trip
        latency still lands on the critical path.  Useless prefetches
        (already local) are free.
        """
        self._check_id(obj_id)
        self.metrics.prefetches_issued += 1
        if obj_id in self.residency:
            tracer = self.tracer
            if tracer.enabled:
                tracer.prefetch(self.object_size, self.metrics.cycles, useful=False)
            return 0.0
        verify_cycles = 0.0
        if self.backend.integrity is not None:
            # Verify before touching residency so a quarantine raise
            # leaves the pool exactly as it was (nothing was admitted).
            verify_cycles = self.backend.verify_payload(
                obj_id, self.object_size, depth if depth is not None else 8
            )
        evicted = self.residency.insert(obj_id)
        if depth is None:
            cost = self.backend.link.wire_cycles(self.object_size)
        else:
            cost = self.backend.link.pipelined_cycles(self.object_size, depth)
        cost += verify_cycles
        self.backend.link.stats.messages += 1
        self.backend.link.stats.bytes_fetched += self.object_size
        self.metrics.bytes_fetched += self.object_size
        self.metrics.prefetches_useful += 1
        for victim, _dirty in evicted:
            self._set_remote(victim)
        cost += self.evacuator.process(evicted, self.metrics)
        tracer = self.tracer
        if tracer.enabled:
            tracer.prefetch(self.object_size, self.metrics.cycles, useful=True)
            if evicted:
                tracer.evict(
                    len(evicted) * self.object_size,
                    self.metrics.cycles,
                    n=len(evicted),
                    dirty=sum(1 for _v, d in evicted if d),
                )
        self._set_local(obj_id, dirty=False)
        return cost

    def materialize(self, obj_id: int, pinned: bool = False) -> float:
        """Make a *fresh* object resident without remote traffic.

        Newly-allocated memory has no remote copy to fetch; this is the
        allocation-time path (used by the heap-pruning extension's
        pinned local heap).  Displaced objects are still evacuated
        normally; returns the app-visible eviction cycles.
        """
        self._check_id(obj_id)
        outcome = self.residency.access(obj_id)
        for victim, _dirty in outcome.evicted:
            self._set_remote(victim)
        cycles = self.evacuator.process(outcome.evicted, self.metrics)
        self._set_local(obj_id, dirty=False)
        if pinned:
            self.residency.pin(obj_id)
        return cycles

    def free_object(self, obj_id: int) -> None:
        """Drop an object (its allocation died); no writeback needed."""
        self._check_id(obj_id)
        self.residency.discard(obj_id)
        self._set_remote(obj_id)

    def expel(self, obj_id: int) -> float:
        """Forcibly evict one resident object; returns app-visible cycles.

        The quota/migration path (``repro.serve``): the object leaves
        local memory *now*, with a dirty writeback driven through the
        evacuator (so deferral, journaling and fault accounting all
        behave exactly as for capacity evictions).  A non-resident or
        pinned object is left alone (pins outrank quotas, as they
        outrank the evacuator).
        """
        self._check_id(obj_id)
        if obj_id not in self.residency or self.residency.is_pinned(obj_id):
            return 0.0
        dirty = self.residency.is_dirty(obj_id)
        self.residency.discard(obj_id)
        self._set_remote(obj_id)
        cycles = self.evacuator.process([(obj_id, dirty)], self.metrics)
        tracer = self.tracer
        if tracer.enabled:
            tracer.evict(
                self.object_size, self.metrics.cycles,
                n=1, dirty=1 if dirty else 0, name="expel",
            )
        return cycles

    # -- crash recovery (repro.integrity.RecoveryManager hooks) ---------------

    def reinstate_dirty(self, obj_id: int) -> float:
        """Undo a rolled-back writeback: make ``obj_id`` resident + dirty.

        Used by recovery for intent-only journal records — the
        writeback never became durable, so the object's only good copy
        is the local one and it must be dirty again.  Idempotent:
        reinstating a resident object just re-marks it dirty.  Returns
        application-visible cycles spent displacing victims, if any.
        """
        self._check_id(obj_id)
        outcome = self.residency.access(obj_id, write=True)
        for victim, _dirty in outcome.evicted:
            self._set_remote(victim)
        cycles = self.evacuator.process(outcome.evicted, self.metrics)
        self._set_local(obj_id, dirty=True)
        return cycles

    def reconcile_residency(self) -> None:
        """Rebuild every metadata word from the residency set.

        A crash can leave words and residency disagreeing (the access
        that crashed had already displaced victims).  Residency is the
        ground truth; rebuilding the words in place also rebuilds the
        TrackFM object state table, which aliases this array.
        """
        size_field = min(self.object_size, (1 << 16) - 1)
        base = np.uint64(encode_remote(0, size_field))
        # In place: the TrackFM state table aliases this buffer.
        self._meta[:] = np.arange(self.config.num_objects, dtype=np.uint64) | base
        for obj_id in self.residency.resident_ids():
            self._set_local(obj_id, dirty=self.residency.is_dirty(obj_id))

    # -- pinning (DerefScope plumbing) ----------------------------------------

    def pin(self, obj_id: int) -> None:
        self._check_id(obj_id)
        self.residency.pin(obj_id)

    def unpin(self, obj_id: int) -> None:
        self.residency.unpin(obj_id)

    # -- stats ----------------------------------------------------------

    @property
    def resident_objects(self) -> int:
        return len(self.residency)

    @property
    def local_bytes_in_use(self) -> int:
        return self.resident_objects * self.object_size
