"""AIFM's stride prefetcher.

§4.3: "we use AIFM's existing stride prefetcher, and we prefetch
pointers operating on induction variables as identified by TrackFM's
loop chunking pass."  The prefetcher watches the stream of object ids a
pointer dereferences; once the same stride repeats enough times it
issues asynchronous fetches ``depth`` objects ahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RuntimeConfigError


@dataclass
class _StreamState:
    last_id: Optional[int] = None
    stride: Optional[int] = None
    confidence: int = 0
    #: Highest object id already requested, to avoid re-issuing.
    issued_up_to: Optional[int] = None


class StridePrefetcher:
    """Per-stream stride detection with confidence threshold."""

    def __init__(self, depth: int = 8, confidence_threshold: int = 2) -> None:
        if depth < 1:
            raise RuntimeConfigError("prefetch depth must be >= 1")
        if confidence_threshold < 1:
            raise RuntimeConfigError("confidence threshold must be >= 1")
        self.depth = depth
        self.confidence_threshold = confidence_threshold
        self._streams: Dict[int, _StreamState] = {}

    def observe(self, obj_id: int, stream: int = 0) -> List[int]:
        """Record an access; return object ids to prefetch (may be empty)."""
        state = self._streams.get(stream)
        if state is None:
            state = _StreamState()
            self._streams[stream] = state
        targets: List[int] = []
        if state.last_id is not None:
            stride = obj_id - state.last_id
            if stride == 0:
                # Same object; no new information.
                state.last_id = obj_id
                return []
            if stride == state.stride:
                state.confidence += 1
            else:
                state.stride = stride
                state.confidence = 1
                state.issued_up_to = None
            if state.confidence >= self.confidence_threshold:
                start = obj_id + state.stride
                if state.issued_up_to is not None and state.stride > 0:
                    start = max(start, state.issued_up_to + state.stride)
                elif state.issued_up_to is not None and state.stride < 0:
                    start = min(start, state.issued_up_to + state.stride)
                for k in range(self.depth):
                    target = start + k * state.stride
                    if target < 0:
                        break
                    targets.append(target)
                if targets:
                    state.issued_up_to = targets[-1]
        state.last_id = obj_id
        return targets

    def reset(self, stream: Optional[int] = None) -> None:
        """Forget one stream's state (or all of them)."""
        if stream is None:
            self._streams.clear()
        else:
            self._streams.pop(stream, None)


@dataclass
class ProgrammedSchedule:
    """A compiler-programmed prefetch schedule for one chunk stream.

    Where :class:`StridePrefetcher` must *learn* the stride at run time
    (burning ~confidence_threshold+1 demand misses before it engages),
    a programmed schedule knows the exact first-touch object sequence
    statically: the ``ProgrammedPrefetchPass`` lowered an oblivious
    loop's affine address stream to it.  ``prime()`` issues the first
    ``distance`` objects before the loop runs a single iteration;
    ``observe(obj_id)`` keeps the issue window ``distance`` objects
    ahead of the consumer.
    """

    #: Distinct object ids in first-touch order.
    objects: List[int]
    #: How many objects ahead of the consumer to stay (cost-model Eq.).
    distance: int
    #: Consumer position: index of the next object the loop will enter.
    _pos: int = field(default=0, repr=False)
    #: How many schedule entries have been issued already.
    _issued: int = field(default=0, repr=False)

    def prime(self) -> List[int]:
        """Targets to issue before the first iteration."""
        want = min(self.distance, len(self.objects))
        targets = self.objects[self._issued : want]
        self._issued = max(self._issued, want)
        return targets

    def observe(self, obj_id: int) -> List[int]:
        """Record that the loop entered ``obj_id``; return new targets."""
        if self._pos < len(self.objects) and self.objects[self._pos] == obj_id:
            self._pos += 1
        want = min(len(self.objects), self._pos + self.distance)
        targets = self.objects[self._issued : want]
        self._issued = max(self._issued, want)
        return targets
