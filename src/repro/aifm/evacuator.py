"""The evacuator: writes cold objects back to the remote node.

AIFM's evacuator threads run concurrently with the application and only
proceed once all application threads are out of DerefScope (the barrier
TrackFM's guards rely on, §3.3).  In the simulation, eviction decisions
come from :class:`repro.sim.residency.ResidencySet` (which honours
pins); the evacuator's job is the *cost accounting*: dirty objects must
cross the wire, clean ones are dropped for free, and because writeback
happens on evacuator threads with deep pipelining, only a fraction of
its cost lands on the application's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import FarMemoryUnavailableError, RuntimeConfigError
from repro.net.backends import RemoteBackend
from repro.sim.metrics import Metrics


@dataclass
class Evacuator:
    """Writeback accounting for evicted objects."""

    backend: RemoteBackend
    object_size: int
    #: Pipeline depth of evacuator writebacks (background threads).
    writeback_depth: int = 8
    #: Fraction of writeback cycles charged to the application; the rest
    #: overlaps with useful work on other cores.
    sync_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.sync_fraction <= 1.0:
            raise RuntimeConfigError("sync_fraction must be in [0, 1]")
        if self.writeback_depth < 1:
            raise RuntimeConfigError("writeback_depth must be >= 1")

    def process(
        self, evicted: Iterable[Tuple[int, bool]], metrics: Metrics
    ) -> float:
        """Account evictions; returns application-visible cycles.

        When the remote tier is unavailable the evacuator never raises:
        a dirty writeback that cannot go out is *deferred* (counted in
        ``metrics.deferred_writebacks``) — evacuator threads run behind
        the application and will retry the page on their next sweep, so
        unavailability here must not fail an unrelated access.
        """
        cycles = 0.0
        for _obj_id, dirty in evicted:
            metrics.evictions += 1
            if not dirty:
                continue
            try:
                cost = self.backend.evict(self.object_size, depth=self.writeback_depth)
            except FarMemoryUnavailableError:
                metrics.deferred_writebacks += 1
                continue
            metrics.bytes_evacuated += self.object_size
            cycles += cost * self.sync_fraction
        metrics.cycles += cycles
        return cycles
