"""The evacuator: writes cold objects back to the remote node.

AIFM's evacuator threads run concurrently with the application and only
proceed once all application threads are out of DerefScope (the barrier
TrackFM's guards rely on, §3.3).  In the simulation, eviction decisions
come from :class:`repro.sim.residency.ResidencySet` (which honours
pins); the evacuator's job is the *cost accounting*: dirty objects must
cross the wire, clean ones are dropped for free, and because writeback
happens on evacuator threads with deep pipelining, only a fraction of
its cost lands on the application's critical path.

With an integrity checker attached to the backend, every dirty
writeback follows the write-ahead journal protocol (INTENT + PAYLOAD
before the wire write, COMMIT after; ABORT on deferral) so a crashed
sweep can be replayed or rolled back by
:class:`repro.integrity.RecoveryManager`.

Writebacks that fail because the remote tier is unavailable are
*deferred*: the object ids are remembered and
:meth:`Evacuator.drain_deferred` re-drives them once the tier heals
(the pool invokes it automatically after the next successful fetch,
i.e. the moment the circuit breaker closes again).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from typing import Callable

from repro.errors import FarMemoryUnavailableError, RuntimeConfigError
from repro.net.backends import RemoteBackend
from repro.sim.metrics import Metrics


@dataclass
class Evacuator:
    """Writeback accounting for evicted objects."""

    backend: RemoteBackend
    object_size: int
    #: Pipeline depth of evacuator writebacks (background threads).
    writeback_depth: int = 8
    #: Fraction of writeback cycles charged to the application; the rest
    #: overlaps with useful work on other cores.
    sync_fraction: float = 0.25
    #: Optional per-eviction hook ``(obj_id, dirty) -> extra cycles``.
    #: The adaptive hybrid runtime installs one so evictions double as
    #: its migration points: an object whose region has flipped to the
    #: page tier is re-homed there as it leaves local memory, instead of
    #: only writing back to the object tier's far node.
    on_evict: Optional[Callable[[int, bool], float]] = None
    #: Dirty objects whose writeback was deferred (remote tier down),
    #: in deferral order; re-driven by :meth:`drain_deferred`.
    _deferred: List[int] = field(default_factory=list, init=False, repr=False)
    #: Lifetime count of deferred writebacks successfully re-driven.
    drained_total: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.sync_fraction <= 1.0:
            raise RuntimeConfigError("sync_fraction must be in [0, 1]")
        if self.writeback_depth < 1:
            raise RuntimeConfigError("writeback_depth must be >= 1")

    @property
    def has_deferred(self) -> bool:
        return bool(self._deferred)

    @property
    def deferred_objects(self) -> Tuple[int, ...]:
        return tuple(self._deferred)

    def _writeback(self, obj_id: int, metrics: Metrics) -> Optional[float]:
        """One dirty writeback; app-visible cycles, or None if deferred."""
        integrity = self.backend.integrity
        if integrity is not None:
            integrity.begin_writeback(obj_id)
        try:
            cost = self.backend.evict(self.object_size, depth=self.writeback_depth)
        except FarMemoryUnavailableError:
            metrics.deferred_writebacks += 1
            if obj_id not in self._deferred:
                self._deferred.append(obj_id)
            if integrity is not None:
                integrity.abort_writeback(obj_id)
            return None
        if integrity is not None:
            integrity.finish_writeback(obj_id)
        metrics.bytes_evacuated += self.object_size
        return cost * self.sync_fraction

    def process(
        self, evicted: Iterable[Tuple[int, bool]], metrics: Metrics
    ) -> float:
        """Account evictions; returns application-visible cycles.

        When the remote tier is unavailable the evacuator never raises:
        a dirty writeback that cannot go out is *deferred* (counted in
        ``metrics.deferred_writebacks`` and remembered for
        :meth:`drain_deferred`) — evacuator threads run behind the
        application and will retry the page on their next sweep, so
        unavailability here must not fail an unrelated access.
        """
        cycles = 0.0
        hook = self.on_evict
        for obj_id, dirty in evicted:
            metrics.evictions += 1
            if hook is not None:
                cycles += hook(obj_id, dirty)
            if not dirty:
                continue
            cost = self._writeback(obj_id, metrics)
            if cost is not None:
                cycles += cost
        metrics.cycles += cycles
        return cycles

    def drain_deferred(self, metrics: Metrics) -> float:
        """Re-drive deferred writebacks; returns application-visible cycles.

        Sweeps in deferral order and stops at the first writeback that
        still cannot go out (that one and the rest stay deferred, and
        the failed attempt is counted in ``deferred_writebacks`` again).
        Cycle accounting matches :meth:`process`: each re-driven
        writeback charges ``evict_cost * sync_fraction``, added to
        ``metrics.cycles`` and returned.
        """
        if not self._deferred:
            return 0.0
        pending = self._deferred
        self._deferred = []
        cycles = 0.0
        for position, obj_id in enumerate(pending):
            cost = self._writeback(obj_id, metrics)
            if cost is None:
                # Still down: _writeback re-deferred obj_id; keep the
                # rest queued (in order, without duplicates) and stop.
                for later in pending[position + 1 :]:
                    if later not in self._deferred:
                        self._deferred.append(later)
                break
            cycles += cost
            self.drained_total += 1
        metrics.cycles += cycles
        return cycles
