"""AIFM runtime substrate (Ruan et al., OSDI '20), rebuilt for simulation.

TrackFM reuses AIFM as its backend (§2): objects are fixed-size chunks
of remotable memory, tracked by per-object metadata, kept local by an
evacuator with hotness bits and a DerefScope barrier, fetched over a
Shenango TCP backend with a stride prefetcher.  This package implements
those mechanisms; :mod:`repro.trackfm` layers the compiler-facing
pointer encoding and guards on top, and :mod:`repro.aifm.datastructures`
provides the library-style remote data structures used by the AIFM
baseline in Figs. 14.
"""

from repro.aifm.objectmeta import (
    ObjectMeta,
    LOCAL_BIT,
    EVACUATING_BIT,
    DIRTY_BIT,
    HOT_BIT,
    SHARED_BIT,
    UNSAFE_MASK,
    encode_local,
    encode_remote,
)
from repro.aifm.allocator import RegionAllocator, Allocation
from repro.aifm.pool import ObjectPool, PoolConfig
from repro.aifm.evacuator import Evacuator
from repro.aifm.prefetcher import StridePrefetcher
from repro.aifm.scope import DerefScope
from repro.aifm.runtime import AIFMRuntime
from repro.aifm.datastructures import RemoteArray, RemoteHashMap, RemoteList

__all__ = [
    "ObjectMeta",
    "LOCAL_BIT",
    "EVACUATING_BIT",
    "DIRTY_BIT",
    "HOT_BIT",
    "SHARED_BIT",
    "UNSAFE_MASK",
    "encode_local",
    "encode_remote",
    "RegionAllocator",
    "Allocation",
    "ObjectPool",
    "PoolConfig",
    "Evacuator",
    "StridePrefetcher",
    "DerefScope",
    "AIFMRuntime",
    "RemoteArray",
    "RemoteHashMap",
    "RemoteList",
]
