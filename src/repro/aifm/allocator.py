"""AIFM's region-based allocator, simplified to what TrackFM uses.

§3.1: "The TrackFM versions [of malloc etc.] leverage AIFM's
region-based allocator under the covers to allocate remotable memory."
Allocations are carved out of the object pool's flat byte space:
a single allocation may span multiple objects, and several small
allocations are grouped into one object (§3.2, "Allocating far
memory").  The allocator hands out *offsets* into the remotable heap;
callers turn them into pointers (TrackFM tags them non-canonical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OutOfMemoryError, PointerError
from repro.units import align_up, ceil_div


@dataclass(frozen=True)
class Allocation:
    """One live allocation inside the remotable heap."""

    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    def object_range(self, object_size: int) -> Tuple[int, int]:
        """Half-open range of object ids this allocation spans."""
        first = self.offset // object_size
        last = ceil_div(self.end, object_size)
        return first, last


class RegionAllocator:
    """Bump allocator with region recycling.

    Regions are object-sized; small allocations pack into the current
    open region (so several allocations share an object, as in AIFM),
    large allocations take whole object runs.  ``free`` returns whole
    regions to a free list once every allocation in them is dead.
    """

    def __init__(self, heap_size: int, object_size: int) -> None:
        if heap_size <= 0 or object_size <= 0:
            raise OutOfMemoryError("heap and object size must be positive")
        if heap_size % object_size != 0:
            heap_size = align_up(heap_size, object_size)
        self.heap_size = heap_size
        self.object_size = object_size
        self.num_objects = heap_size // object_size
        self._next_region = 0
        self._free_regions: List[int] = []
        # Open region for small allocations: (region id, fill offset).
        self._open_region: Optional[Tuple[int, int]] = None
        self._live: Dict[int, Allocation] = {}
        # Per-region live-allocation counts for recycling.
        self._region_live: Dict[int, int] = {}
        self.bytes_allocated = 0

    # -- internals --------------------------------------------------------

    def _take_region(self) -> int:
        if self._free_regions:
            return self._free_regions.pop()
        if self._next_region >= self.num_objects:
            raise OutOfMemoryError(
                f"remotable heap exhausted ({self.heap_size} bytes)"
            )
        region = self._next_region
        self._next_region += 1
        return region

    def _take_region_run(self, count: int) -> int:
        """A run of ``count`` contiguous fresh regions (large allocations)."""
        if self._next_region + count > self.num_objects:
            raise OutOfMemoryError(
                f"remotable heap exhausted allocating {count} regions"
            )
        start = self._next_region
        self._next_region += count
        return start

    # -- public API --------------------------------------------------------

    def allocate(self, size: int, align: int = 16) -> Allocation:
        """Allocate ``size`` bytes; returns the heap-offset allocation."""
        if size <= 0:
            size = 1
        size = align_up(size, align)
        if size <= self.object_size:
            alloc = self._allocate_small(size, align)
        else:
            regions = ceil_div(size, self.object_size)
            start = self._take_region_run(regions)
            for r in range(start, start + regions):
                self._region_live[r] = self._region_live.get(r, 0) + 1
            alloc = Allocation(start * self.object_size, size)
        self._live[alloc.offset] = alloc
        self.bytes_allocated += alloc.size
        return alloc

    def _allocate_small(self, size: int, align: int) -> Allocation:
        if self._open_region is not None:
            region, fill = self._open_region
            offset = align_up(fill, align)
            if offset + size <= self.object_size:
                self._open_region = (region, offset + size)
                self._region_live[region] = self._region_live.get(region, 0) + 1
                return Allocation(region * self.object_size + offset, size)
        region = self._take_region()
        self._open_region = (region, size)
        self._region_live[region] = self._region_live.get(region, 0) + 1
        return Allocation(region * self.object_size, size)

    def free(self, offset: int) -> Allocation:
        """Free the allocation starting at ``offset``."""
        alloc = self._live.pop(offset, None)
        if alloc is None:
            raise PointerError(f"free of unknown heap offset {offset:#x}")
        self.bytes_allocated -= alloc.size
        first, last = alloc.object_range(self.object_size)
        for region in range(first, last):
            count = self._region_live.get(region, 0) - 1
            if count <= 0:
                self._region_live.pop(region, None)
                if self._open_region is not None and self._open_region[0] == region:
                    self._open_region = None
                self._free_regions.append(region)
            else:
                self._region_live[region] = count
        return alloc

    def allocation_at(self, offset: int) -> Optional[Allocation]:
        """The live allocation that *contains* ``offset``, if any."""
        # Fast path: exact start.
        alloc = self._live.get(offset)
        if alloc is not None:
            return alloc
        for candidate in self._live.values():
            if candidate.offset <= offset < candidate.end:
                return candidate
        return None

    def live_allocations(self) -> List[Allocation]:
        return list(self._live.values())

    @property
    def regions_in_use(self) -> int:
        return self._next_region - len(self._free_regions)
