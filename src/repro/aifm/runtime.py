"""The AIFM runtime facade: the library-based baseline.

This is far memory as AIFM ships it: the *programmer* places data in
remote data structures, every dereference goes through a smart pointer
(cheap, no guard), iterators know the data structure's layout and drive
the stride prefetcher, and object sizes are chosen per data structure by
the developer.  TrackFM reuses everything below the smart-pointer layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.aifm.allocator import Allocation, RegionAllocator
from repro.aifm.pool import ObjectPool, PoolConfig
from repro.aifm.prefetcher import StridePrefetcher
from repro.aifm.scope import DerefScope
from repro.errors import PointerError
from repro.integrity import (
    IntegrityChecker,
    IntegrityConfig,
    RecoveryManager,
    RecoveryReport,
    attach_integrity,
)
from repro.machine.costs import AccessKind
from repro.net.backends import RemoteBackend
from repro.sim.metrics import Metrics
from repro.units import ceil_div

#: Cycles of AIFM's smart-pointer indirection on a hot (local) deref.
#: §4.1: "AIFM does incur overhead for smart pointer indirection" — it
#: is cheaper than a TrackFM fast-path guard (21 cycles) because there
#: is no custody check or state-table load; the unique pointer embeds
#: the state.
AIFM_DEREF_OVERHEAD = 9.0


class AIFMRuntime:
    """Object-granular far memory with library (not compiler) knowledge."""

    def __init__(
        self,
        config: PoolConfig,
        backend: Optional[RemoteBackend] = None,
        prefetch_depth: int = 8,
        deref_overhead: float = AIFM_DEREF_OVERHEAD,
        tracer=None,
    ) -> None:
        self.config = config
        self.pool = ObjectPool(config, backend=backend, tracer=tracer)
        self.allocator = RegionAllocator(config.heap_size, config.object_size)
        self.prefetcher = StridePrefetcher(depth=prefetch_depth) if prefetch_depth else None
        self.deref_overhead = deref_overhead
        self.object_size = config.object_size

    def set_tracer(self, tracer) -> None:
        """Attach a tracer (the pool is this runtime's only event source)."""
        self.pool.tracer = tracer
        self.pool.backend.set_tracer(tracer)

    def enable_integrity(
        self, config: Optional[IntegrityConfig] = None
    ) -> IntegrityChecker:
        """Checksum-verify every remote fetch (detect → repair → quarantine).

        Attaches an :class:`~repro.integrity.IntegrityChecker` to the
        pool's backend and wires it into this runtime's metrics and
        tracer; dirty writebacks start following the write-ahead
        evacuation journal.  Returns the checker.
        """
        checker = attach_integrity(self.pool.backend, config)
        checker.metrics = self.pool.metrics
        checker.tracer = self.pool.tracer
        return checker

    def recover(self) -> RecoveryReport:
        """Replay/roll back the evacuation journal and rebuild residency."""
        return RecoveryManager.for_pool(self.pool).recover()

    def enable_degraded_mode(
        self,
        stall_cycles: float = 0.0,
        hook=None,
    ) -> None:
        """Serve derefs locally when far memory is unavailable.

        Same semantics as
        :meth:`repro.trackfm.runtime.TrackFMRuntime.enable_degraded_mode`
        — both runtimes share the pool-level hook.
        """
        if hook is not None:
            self.pool.degraded_handler = hook
        else:
            self.pool.degraded_handler = lambda _obj_id: stall_cycles

    def remote_backends(self) -> tuple:
        """Every far node this runtime talks to (one: the pool's).

        Uniform across the four runtimes; the serving layer uses it to
        treat each shard's backends as one fault domain.
        """
        return (self.pool.backend,)

    @property
    def tracer(self):
        return self.pool.tracer

    @property
    def metrics(self) -> Metrics:
        return self.pool.metrics

    # -- allocation -----------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """Carve a remotable allocation out of the pool's heap."""
        return self.allocator.allocate(size)

    def free(self, alloc: Allocation) -> None:
        freed = self.allocator.free(alloc.offset)
        first, last = freed.object_range(self.object_size)
        for obj_id in range(first, last):
            # Only whole-object frees drop residency; shared regions stay.
            if self.allocator.allocation_at(obj_id * self.object_size) is None:
                self.pool.free_object(obj_id)

    def scope(self) -> DerefScope:
        """A DerefScope over this runtime's pool (Listing 1 style)."""
        return DerefScope(self.pool)

    # -- the deref path ----------------------------------------------------

    def access(
        self,
        offset: int,
        kind: AccessKind = AccessKind.READ,
        size: int = 8,
        stream: int = 0,
        scope: Optional[DerefScope] = None,
        prefetch: bool = True,
        depth: int = 1,
    ) -> float:
        """Dereference ``size`` bytes at heap ``offset``; returns cycles.

        Objects spanned by the access are localized; the stride
        prefetcher observes the leading object.  Smart-pointer overhead
        plus the local access cost are always charged.
        """
        if size <= 0:
            raise PointerError("access size must be positive")
        costs = self.config.costs
        cycles = self.deref_overhead + costs.local_access
        write = kind is AccessKind.WRITE
        first = self.pool.object_of_offset(offset)
        last = self.pool.object_of_offset(offset + size - 1)
        for obj_id in range(first, last + 1):
            _hit, move = self.pool.ensure_local(obj_id, write=write, depth=depth)
            cycles += move
            if scope is not None:
                scope.pin(obj_id)
        if self.prefetcher is not None and prefetch:
            for target in self.prefetcher.observe(first, stream=stream):
                if 0 <= target < self.pool.config.num_objects:
                    cycles += self.pool.prefetch(target)
        self.metrics.accesses += 1
        self.metrics.cycles += cycles
        return cycles

    # -- bulk helper used by the executor for closed-form scans --------------

    def sequential_scan(
        self,
        offset: int,
        n_elems: int,
        elem_size: int,
        kind: AccessKind = AccessKind.READ,
        resident_fraction: float = 0.0,
    ) -> float:
        """Closed-form cost of a sequential scan (library iterator).

        AIFM's iterators localize object-by-object and prefetch ahead,
        so per element: smart-pointer overhead + local access, plus per
        object: a pipelined fetch for the non-resident fraction.
        ``resident_fraction`` is the probability an object is already
        local (0 for a cold scan larger than local memory).
        """
        costs = self.config.costs
        total_bytes = n_elems * elem_size
        n_objects = max(1, ceil_div(total_bytes, self.object_size))
        per_elem = self.deref_overhead + costs.local_access
        cycles = n_elems * per_elem
        misses = int(round(n_objects * (1.0 - resident_fraction)))
        if misses:
            wire = self.pool.backend.link.wire_cycles(self.object_size)
            cycles += misses * wire
            integrity = self.pool.backend.integrity
            if integrity is not None:
                # Closed-form scans verify each fetched object's
                # checksum (no corruption rolls: the closed form models
                # the healthy-payload cost envelope).
                cycles += misses * integrity.config.verify_cycles
            self.metrics.remote_fetches += misses
            self.metrics.bytes_fetched += misses * self.object_size
            self.pool.backend.link.stats.bytes_fetched += misses * self.object_size
            self.metrics.prefetches_issued += misses
            self.metrics.prefetches_useful += misses
            tracer = self.pool.tracer
            if tracer.enabled:
                tracer.fetch(
                    misses * self.object_size, wire, self.metrics.cycles,
                    n=misses, name="scan_fetch",
                )
                tracer.prefetch(
                    misses * self.object_size, self.metrics.cycles,
                    useful=True, n=misses, name="scan_prefetch",
                )
            if kind is AccessKind.WRITE:
                evict = self.pool.backend.link.wire_cycles(self.object_size)
                cycles += misses * evict * self.pool.evacuator.sync_fraction
                self.metrics.bytes_evacuated += misses * self.object_size
                self.metrics.evictions += misses
                if tracer.enabled:
                    tracer.evict(
                        misses * self.object_size, self.metrics.cycles,
                        n=misses, dirty=misses, name="scan_evict",
                    )
        self.metrics.accesses += n_elems
        self.metrics.cycles += cycles
        return cycles
