"""AIFM's library-style remote data structures.

These are the programmer-facing types the library-based approach
requires (Listing 1): the application is *rewritten* to use them.  They
exist here for two reasons: the AIFM baseline in Figs. 14 uses them, and
they make the transparency contrast concrete — compare
``examples/quickstart.py`` (TrackFM, unmodified loop) with the
``RemoteArray`` loop these classes force on the developer.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.aifm.allocator import Allocation
from repro.aifm.runtime import AIFMRuntime
from repro.aifm.scope import DerefScope
from repro.errors import PointerError, WorkloadError
from repro.machine.costs import AccessKind


class RemoteArray:
    """A fixed-length array of ``elem_size``-byte elements in far memory.

    ``at(scope, i)`` mirrors AIFM's API (Listing 1): accesses must carry
    a DerefScope so the evacuator cannot pull the object out from under
    the caller.
    """

    def __init__(self, runtime: AIFMRuntime, length: int, elem_size: int = 8) -> None:
        if length <= 0 or elem_size <= 0:
            raise WorkloadError("RemoteArray needs positive length and element size")
        self.runtime = runtime
        self.length = length
        self.elem_size = elem_size
        self.allocation: Allocation = runtime.allocate(length * elem_size)

    def _offset(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise PointerError(f"index {index} out of range [0, {self.length})")
        return self.allocation.offset + index * self.elem_size

    def at(self, scope: DerefScope, index: int, stream: int = 0) -> float:
        """Read element ``index``; returns simulated cycles."""
        return self.runtime.access(
            self._offset(index),
            AccessKind.READ,
            size=self.elem_size,
            stream=stream,
            scope=scope,
        )

    def set(self, scope: DerefScope, index: int, stream: int = 0) -> float:
        """Write element ``index``; returns simulated cycles."""
        return self.runtime.access(
            self._offset(index),
            AccessKind.WRITE,
            size=self.elem_size,
            stream=stream,
            scope=scope,
        )

    def scan(self, kind: AccessKind = AccessKind.READ) -> float:
        """Iterate the whole array with the library iterator (prefetching)."""
        return self.runtime.sequential_scan(
            self.allocation.offset, self.length, self.elem_size, kind
        )

    def free(self) -> None:
        self.runtime.free(self.allocation)


class RemoteList:
    """A singly-linked list with one AIFM object per node.

    §2: "A remote linked list ... might use an AIFM object size of 64B
    to constitute a single linked list node."  The library developer's
    iterator knows the link structure, so it prefetches the successor
    while the current node is processed — the manual counterpart of the
    compiler's chase-prefetch extension.
    """

    def __init__(self, runtime: AIFMRuntime, node_size: int = 64) -> None:
        if node_size <= 0:
            raise WorkloadError("RemoteList needs a positive node size")
        self.runtime = runtime
        self.node_size = node_size
        self._nodes: list = []  # Allocation per node, in list order

    def append(self, count: int = 1) -> None:
        """Append ``count`` fresh nodes."""
        if count <= 0:
            raise WorkloadError("append count must be positive")
        for _ in range(count):
            self._nodes.append(self.runtime.allocate(self.node_size))

    def __len__(self) -> int:
        return len(self._nodes)

    def node_object(self, index: int) -> int:
        """The pool object id backing node ``index``."""
        if not 0 <= index < len(self._nodes):
            raise PointerError(f"node {index} out of range")
        return self.runtime.pool.object_of_offset(self._nodes[index].offset)

    def walk(self, prefetch_next: bool = True) -> float:
        """Traverse the list once; returns simulated cycles.

        With ``prefetch_next`` the iterator issues the successor fetch
        before processing the current node (AIFM's iterator pattern).
        """
        cycles = 0.0
        for i, node in enumerate(self._nodes):
            # Touch the current node first (promoting it), THEN issue
            # the successor prefetch — the reverse order would let the
            # prefetch's eviction decision victimize the cold-inserted
            # current node.
            cycles += self.runtime.access(
                node.offset,
                AccessKind.READ,
                size=min(8, self.node_size),
                prefetch=False,
            )
            if prefetch_next and i + 1 < len(self._nodes):
                nxt = self.runtime.pool.object_of_offset(self._nodes[i + 1].offset)
                cycles += self.runtime.pool.prefetch(nxt, depth=2)
        return cycles

    def free(self) -> None:
        for node in self._nodes:
            self.runtime.free(node)
        self._nodes.clear()


class RemoteHashMap:
    """An open-addressed hash map whose buckets live in far memory.

    Keys hash to buckets; each bucket is ``entry_size`` bytes.  Lookups
    dereference exactly one bucket — the fine-grained access pattern
    that makes object size matter (Figs. 9/13).
    """

    def __init__(
        self,
        runtime: AIFMRuntime,
        capacity: int,
        entry_size: int = 16,
    ) -> None:
        if capacity <= 0 or entry_size <= 0:
            raise WorkloadError("RemoteHashMap needs positive capacity and entry size")
        self.runtime = runtime
        self.capacity = capacity
        self.entry_size = entry_size
        self.allocation = runtime.allocate(capacity * entry_size)

    def _bucket_offset(self, key: int) -> int:
        # Fibonacci hashing spreads keys across buckets deterministically.
        bucket = (key * 0x9E3779B97F4A7C15 & ((1 << 64) - 1)) % self.capacity
        return self.allocation.offset + bucket * self.entry_size

    def get(self, scope: DerefScope, key: int) -> float:
        """Point lookup; returns simulated cycles."""
        return self.runtime.access(
            self._bucket_offset(key),
            AccessKind.READ,
            size=self.entry_size,
            scope=scope,
            prefetch=False,  # point lookups have no stride to learn
        )

    def put(self, scope: DerefScope, key: int) -> float:
        """Point insert/update; returns simulated cycles."""
        return self.runtime.access(
            self._bucket_offset(key),
            AccessKind.WRITE,
            size=self.entry_size,
            scope=scope,
            prefetch=False,
        )

    def free(self) -> None:
        self.runtime.free(self.allocation)
