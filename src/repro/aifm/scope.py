"""DerefScope: the pin that keeps in-use objects out of the evacuator.

Listing 1 of the paper shows AIFM's programmer-facing ``DerefScope``; a
scope object "must be provided so that AIFM does not evacuate in-use
local memory."  TrackFM's guards enter an equivalent implicit scope for
the duration of a guarded access (§3.3 — the evacuator barrier cannot
converge while a thread is inside a guard).
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.aifm.pool import ObjectPool
from repro.errors import EvacuationError


class DerefScope:
    """Context manager pinning every object dereferenced within it."""

    def __init__(self, pool: ObjectPool) -> None:
        self.pool = pool
        self._pinned: List[int] = []
        self._active = False

    def __enter__(self) -> "DerefScope":
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def pin(self, obj_id: int) -> None:
        """Pin ``obj_id`` for this scope's lifetime."""
        if not self._active:
            raise EvacuationError("DerefScope used outside its with-block")
        self.pool.pin(obj_id)
        self._pinned.append(obj_id)

    def close(self) -> None:
        """Unpin everything (idempotent)."""
        for obj_id in self._pinned:
            self.pool.unpin(obj_id)
        self._pinned.clear()
        self._active = False

    @property
    def pinned_count(self) -> int:
        return len(self._pinned)
