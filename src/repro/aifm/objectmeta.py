"""AIFM object metadata: the two 8-byte formats of Fig. 3.

AIFM keeps per-object metadata in one of two formats depending on the
object's state.  TrackFM's fast-path guard tests a mask against this
word ("test $0x10580, %eax" in Fig. 4b): when none of the *unsafe* bits
are set the object is guaranteed local and the guarded access may
proceed.

Layouts (one 64-bit word):

* **local**:  bit 63 = 0 (local), bit 62 = evacuating, bit 61 = dirty,
  bit 60 = hot, bit 59 = shared, bits 0–46 = object data address.
* **remote**: bit 63 = 1 (remote), bits 55–62 = DS id (8b), bit 54 =
  shared, bits 38–53 = object size (16b), bits 0–37 = object id (38b).

The unsafe mask is {remote, evacuating}: a set bit means the fast path
must not touch the object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PointerError

REMOTE_SHIFT = 63
EVACUATING_SHIFT = 62
DIRTY_SHIFT = 61
HOT_SHIFT = 60
SHARED_LOCAL_SHIFT = 59

LOCAL_BIT = 0  # local format is flagged by bit 63 being clear
REMOTE_BIT = 1 << REMOTE_SHIFT
EVACUATING_BIT = 1 << EVACUATING_SHIFT
DIRTY_BIT = 1 << DIRTY_SHIFT
HOT_BIT = 1 << HOT_SHIFT
SHARED_BIT = 1 << SHARED_LOCAL_SHIFT

#: Bits that make the fast path bail to the slow path.
UNSAFE_MASK = REMOTE_BIT | EVACUATING_BIT

ADDR_MASK = (1 << 47) - 1

# Remote-format fields.
_RF_DSID_SHIFT = 55
_RF_DSID_MASK = (1 << 8) - 1
_RF_SHARED_SHIFT = 54
_RF_SIZE_SHIFT = 38
_RF_SIZE_MASK = (1 << 16) - 1
_RF_OBJID_MASK = (1 << 38) - 1


def encode_local(
    data_addr: int,
    dirty: bool = False,
    hot: bool = False,
    shared: bool = False,
    evacuating: bool = False,
) -> int:
    """Pack the local-format metadata word."""
    if not 0 <= data_addr <= ADDR_MASK:
        raise PointerError(f"object data address {data_addr:#x} exceeds 47 bits")
    word = data_addr
    if evacuating:
        word |= EVACUATING_BIT
    if dirty:
        word |= DIRTY_BIT
    if hot:
        word |= HOT_BIT
    if shared:
        word |= SHARED_BIT
    return word


def encode_remote(obj_id: int, obj_size: int, ds_id: int = 0, shared: bool = False) -> int:
    """Pack the remote-format metadata word."""
    if not 0 <= obj_id <= _RF_OBJID_MASK:
        raise PointerError(f"object id {obj_id} exceeds 38 bits")
    if not 0 <= obj_size <= _RF_SIZE_MASK:
        raise PointerError(f"object size {obj_size} exceeds 16 bits")
    if not 0 <= ds_id <= _RF_DSID_MASK:
        raise PointerError(f"DS id {ds_id} exceeds 8 bits")
    word = REMOTE_BIT
    word |= ds_id << _RF_DSID_SHIFT
    if shared:
        word |= 1 << _RF_SHARED_SHIFT
    word |= obj_size << _RF_SIZE_SHIFT
    word |= obj_id
    return word


@dataclass
class ObjectMeta:
    """Decoded view of one metadata word.

    ``check`` is the object's expected integrity tag (the checksum its
    remote copy must verify against), carried alongside the word when
    the owning pool has an integrity checker attached; None otherwise.
    It rides next to the word rather than inside it — the Fig. 3 bit
    layout has no spare field, so the simulated "page table" keeps the
    tag in a sidecar exactly like the fastswap runtime does.
    """

    word: int
    check: Optional[int] = None

    # -- state queries ----------------------------------------------------

    @property
    def is_remote(self) -> bool:
        return bool(self.word & REMOTE_BIT)

    @property
    def is_local(self) -> bool:
        return not self.is_remote

    @property
    def is_evacuating(self) -> bool:
        return self.is_local and bool(self.word & EVACUATING_BIT)

    @property
    def is_dirty(self) -> bool:
        return self.is_local and bool(self.word & DIRTY_BIT)

    @property
    def is_hot(self) -> bool:
        return self.is_local and bool(self.word & HOT_BIT)

    @property
    def is_safe(self) -> bool:
        """The fast-path test: no unsafe bits set."""
        return (self.word & UNSAFE_MASK) == 0

    # -- local-format fields ----------------------------------------------

    @property
    def data_addr(self) -> int:
        if self.is_remote:
            raise PointerError("data_addr of a remote-format word")
        return self.word & ADDR_MASK

    # -- remote-format fields -----------------------------------------------

    @property
    def obj_id(self) -> int:
        if not self.is_remote:
            raise PointerError("obj_id of a local-format word")
        return self.word & _RF_OBJID_MASK

    @property
    def obj_size(self) -> int:
        if not self.is_remote:
            raise PointerError("obj_size of a local-format word")
        return (self.word >> _RF_SIZE_SHIFT) & _RF_SIZE_MASK

    @property
    def ds_id(self) -> int:
        if not self.is_remote:
            raise PointerError("ds_id of a local-format word")
        return (self.word >> _RF_DSID_SHIFT) & _RF_DSID_MASK

    # -- transitions --------------------------------------------------------

    def with_dirty(self, dirty: bool = True) -> "ObjectMeta":
        if self.is_remote:
            raise PointerError("cannot dirty a remote object")
        word = self.word | DIRTY_BIT if dirty else self.word & ~DIRTY_BIT
        return ObjectMeta(word, self.check)

    def with_hot(self, hot: bool = True) -> "ObjectMeta":
        if self.is_remote:
            raise PointerError("cannot mark a remote object hot")
        word = self.word | HOT_BIT if hot else self.word & ~HOT_BIT
        return ObjectMeta(word, self.check)

    def with_evacuating(self, evac: bool = True) -> "ObjectMeta":
        if self.is_remote:
            raise PointerError("cannot set evacuating on a remote object")
        word = self.word | EVACUATING_BIT if evac else self.word & ~EVACUATING_BIT
        return ObjectMeta(word, self.check)

    def __repr__(self) -> str:
        if self.is_remote:
            return f"<ObjectMeta remote id={self.obj_id} size={self.obj_size}>"
        flags = "".join(
            c
            for c, on in (
                ("E", self.is_evacuating),
                ("D", self.is_dirty),
                ("H", self.is_hot),
            )
            if on
        )
        return f"<ObjectMeta local addr={self.data_addr:#x} {flags or '-'}>"
