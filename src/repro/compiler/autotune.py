"""Object-size autotuning (§3.2 / §5, implemented).

The paper leaves object-size selection to the user but observes: "the
small search space suggests that an autotuning approach is feasible ...
an exhaustive search involving recompilation and a short-term execution
would simply expand the short compile times."  This module is that
search: for each plausible object size (powers of two, cache line to
base page), recompile the program, run it briefly under a far-memory
runtime, and keep the cheapest size.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence

from repro.aifm.pool import PoolConfig
from repro.compiler.pipeline import CompilerConfig, TrackFMCompiler
from repro.errors import PassError
from repro.ir.module import Module
from repro.trackfm.runtime import TrackFMRuntime
from repro.units import PLAUSIBLE_OBJECT_SIZES

ModuleFactory = Callable[[], Module]


@dataclass
class AutotuneTrial:
    """One (object size, recompile, short run) data point."""

    object_size: int
    cycles: float
    guards: int
    bytes_fetched: int
    compile_seconds: float


@dataclass
class AutotuneResult:
    """Outcome of the exhaustive search."""

    best_size: int
    trials: Dict[int, AutotuneTrial] = field(default_factory=dict)

    @property
    def best_trial(self) -> AutotuneTrial:
        return self.trials[self.best_size]

    def speedup_over_worst(self) -> float:
        worst = max(t.cycles for t in self.trials.values())
        best = self.trials[self.best_size].cycles
        if best <= 0:
            return 1.0
        return worst / best

    def summary(self) -> str:
        rows = ", ".join(
            f"{size}B={trial.cycles:.0f}cyc"
            for size, trial in sorted(self.trials.items())
        )
        return f"best object size {self.best_size}B ({rows})"


def autotune_object_size(
    module_factory: ModuleFactory,
    local_memory: int,
    heap_size: int,
    sizes: Sequence[int] = PLAUSIBLE_OBJECT_SIZES,
    base_config: Optional[CompilerConfig] = None,
    entry: str = "main",
    max_steps: int = 5_000_000,
) -> AutotuneResult:
    """Pick the fastest compile-time object size for a program.

    ``module_factory`` must return a *fresh, untransformed* module per
    call (compilation mutates in place, and each trial needs its own).
    The probe runs are short by construction (``max_steps`` bounds
    them), matching the paper's "short-term execution" framing.
    """
    from repro.sim.irrun import TrackFMProgram  # local: avoid sim<->compiler cycle

    if not sizes:
        raise PassError("autotune needs at least one candidate size")
    trials: Dict[int, AutotuneTrial] = {}
    for size in sizes:
        config = (
            replace(base_config, object_size=size)
            if base_config is not None
            else CompilerConfig(object_size=size)
        )
        module = module_factory()
        compiled = TrackFMCompiler(config).compile(module)
        runtime = TrackFMRuntime(
            PoolConfig(
                object_size=size,
                local_memory=max(local_memory, size),
                heap_size=max(heap_size, 2 * size),
            )
        )
        program = TrackFMProgram(compiled.module, runtime, max_steps=max_steps)
        program.run(entry)
        trials[size] = AutotuneTrial(
            object_size=size,
            cycles=runtime.metrics.cycles,
            guards=runtime.metrics.total_guards,
            bytes_fetched=runtime.metrics.bytes_fetched,
            compile_seconds=compiled.compile_seconds,
        )
    best = min(trials.values(), key=lambda t: t.cycles).object_size
    return AutotuneResult(best_size=best, trials=trials)
