"""The TrackFM compiler facade: configure, compile, report.

``TrackFMCompiler.compile(module)`` runs the Fig. 2 pipeline in place
and returns a :class:`CompileResult` with the statistics §4 reports:
guards inserted, loops chunked, memory-instruction counts before/after
O1 (Fig. 17b), and the native code-size growth estimate (§4.6).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.profiler import ProfileData
from repro.compiler.chunk_analysis import ChunkAnalysisPass, ChunkPlan
from repro.compiler.chunk_transform import ChunkTransformPass
from repro.compiler.guard_analysis import GuardAnalysisPass
from repro.compiler.guard_transform import (
    GUARD_NATIVE_INSTRUCTIONS,
    GuardTransformPass,
)
from repro.compiler.libc_transform import LibcTransformPass
from repro.compiler.optimize import O1Pipeline
from repro.compiler.pass_manager import Pass, PassContext, PassManager
from repro.compiler.runtime_init import RuntimeInitPass
from repro.errors import PassError
from repro.ir.module import Module
from repro.machine.costs import CostTable, DEFAULT_COSTS
from repro.units import BASE_PAGE, is_power_of_two


class ChunkingPolicy(enum.Enum):
    """Which loops get the chunking transformation."""

    #: No chunking: the naive transformation everywhere (baselines).
    NONE = "none"
    #: Chunk every candidate loop (the "all loops" lines of Figs. 8/15).
    ALL = "all"
    #: Cost-model (+ profile) filtered ("high-density loops only").
    COST_MODEL = "cost_model"


@dataclass
class CompilerConfig:
    """Everything the compiler must decide before transforming.

    ``object_size`` is the single compile-time AIFM object size (§3.2);
    the evaluation sweeps it between 64 B and 4 KB.
    """

    object_size: int = BASE_PAGE
    chunking: ChunkingPolicy = ChunkingPolicy.COST_MODEL
    enable_prefetch: bool = True
    #: Greedy prefetching for pointer-chase loops (§5 extension).
    enable_chase_prefetch: bool = True
    #: Lower exact affine streams of oblivious chunked loops to
    #: ``tfm_prefetch_sched`` schedules (the static auditor's 3PO-style
    #: extension).  Opt-in: off by default so baselines are bit-stable.
    enable_programmed_prefetch: bool = False
    #: Computation offload for big remote reductions (§5 extension).
    #: Opt-in: it changes where computation runs.
    enable_offload: bool = False
    #: Minimum scanned footprint before a reduction is worth offloading.
    offload_threshold_bytes: int = 64 * 1024
    run_o1: bool = True
    entry: str = "main"
    #: Trip count assumed for loops with no profile and no static bound.
    assumed_trip_count: int = 1_000_000
    #: Profile-guided heap pruning (§5 extension): bytes of local memory
    #: the compiler may dedicate to pinning hot allocations.  0 disables.
    pin_budget_bytes: int = 0
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)
    verify_between_passes: bool = True
    #: Run the guard-safety sanitizer after every pipeline stage (in
    #: incremental mode) and once post-pipeline (strict).  A violation
    #: raises :class:`PassError` naming the pass that broke the
    #: invariant — the bisecting debug mode for pass authors.
    verify_guards: bool = False

    def __post_init__(self) -> None:
        if not is_power_of_two(self.object_size):
            raise PassError("object size must be a power of two")
        if not 64 <= self.object_size <= 4096:
            # §3.2: plausible sizes span cache line to base page.
            raise PassError(
                f"object size {self.object_size} outside the plausible "
                "64B..4KB range"
            )


@dataclass
class CompileResult:
    """What came out of one compilation."""

    module: Module
    config: CompilerConfig
    ctx: PassContext
    instructions_before: int
    instructions_after: int
    mem_instructions_before: int
    mem_instructions_after: int
    compile_seconds: float

    @property
    def guards_inserted(self) -> int:
        return self.ctx.get_stat("guard-transform.guards_inserted")

    @property
    def guard_candidates(self) -> int:
        return self.ctx.get_stat("guard-analysis.candidates")

    @property
    def loops_chunked(self) -> int:
        return self.ctx.get_stat("chunk-transform.loops_chunked")

    @property
    def accesses_chunked(self) -> int:
        return self.ctx.get_stat("chunk-transform.accesses_chunked")

    @property
    def chunk_plans(self) -> List[ChunkPlan]:
        return self.ctx.results.get("chunk_plans", [])

    @property
    def code_size_factor(self) -> float:
        """Estimated native code growth (§4.6 reports an average 2.4x).

        Each guard call inlines to ~14 instructions in native code;
        chunk derefs inline to the 3-instruction boundary check plus a
        slow call.  We estimate post-lowering size relative to the
        pre-transform instruction count.
        """
        if self.instructions_before == 0:
            return 1.0
        inlined = (
            self.instructions_after
            + self.guards_inserted * (GUARD_NATIVE_INSTRUCTIONS - 1)
            + self.accesses_chunked * 2
        )
        return inlined / self.instructions_before

    def summary(self) -> str:
        return (
            f"compiled in {self.compile_seconds * 1e3:.1f} ms: "
            f"{self.guards_inserted} guards, {self.loops_chunked} loops "
            f"chunked ({self.accesses_chunked} accesses), code size "
            f"~{self.code_size_factor:.2f}x"
        )


class TrackFMCompiler:
    """Drives the full pass pipeline over one module (in place)."""

    def __init__(self, config: Optional[CompilerConfig] = None) -> None:
        self.config = config if config is not None else CompilerConfig()

    def _guard_hook(self):
        """Between-passes guard-safety hook (``verify_guards=True``)."""
        from repro.sanitizer import Sanitizer

        sanitizer = Sanitizer(strict=False)

        def hook(p: Pass, module: Module, ctx: PassContext) -> None:
            report = sanitizer.run(module)
            ctx.results.setdefault("sanitizer_per_pass", {})[p.name] = report
            if not report.ok:
                first = report.errors[0]
                raise PassError(
                    f"guard-safety sanitizer failed after pass {p.name!r}: "
                    f"{first.render()} "
                    f"(+{len(report.errors) - 1} more error(s))"
                )

        return hook

    def _sanitize_final(self, module: Module, ctx: PassContext) -> None:
        """Post-pipeline strict check: everything heap-may is guarded."""
        from repro.sanitizer import Sanitizer

        report = Sanitizer(strict=True).run(module)
        ctx.results["sanitizer_report"] = report
        if not report.ok:
            first = report.errors[0]
            raise PassError(
                "guard-safety sanitizer failed post-pipeline: "
                f"{first.render()} (+{len(report.errors) - 1} more error(s))"
            )

    def build_pipeline(self) -> List[Pass]:
        passes: List[Pass] = []
        if self.config.run_o1:
            passes.append(O1Pipeline())
        passes.append(RuntimeInitPass(entry=self.config.entry))
        passes.append(GuardAnalysisPass())
        if self.config.pin_budget_bytes > 0:
            from repro.compiler.heap_pruning import HeapPruningPass

            passes.append(HeapPruningPass(self.config.pin_budget_bytes))
        if self.config.enable_offload:
            from repro.compiler.offload import OffloadPass

            passes.append(OffloadPass())
        passes.append(ChunkAnalysisPass())
        passes.append(ChunkTransformPass())
        if self.config.enable_programmed_prefetch:
            from repro.compiler.programmed_prefetch import ProgrammedPrefetchPass

            passes.append(ProgrammedPrefetchPass())
        if self.config.enable_chase_prefetch:
            from repro.compiler.chase_prefetch import ChasePrefetchPass

            passes.append(ChasePrefetchPass())
        passes.append(GuardTransformPass())
        passes.append(LibcTransformPass())
        return passes

    def compile(
        self,
        module: Module,
        profile: Optional[ProfileData] = None,
        tracer=None,
    ) -> CompileResult:
        """Transform ``module`` for far memory; returns stats.

        ``profile`` (from :func:`repro.analysis.profiler.profile_module`
        on the *untransformed* module) sharpens the chunking cost model.
        ``tracer`` (a :class:`repro.trace.Tracer`) records one ``pass``
        event per pipeline stage on the wall-clock track.
        """
        ctx = PassContext(config=self.config, profile=profile)
        insts_before = module.instruction_count()
        mems_before = module.memory_access_count()
        started = time.perf_counter()
        pm = PassManager(
            self.build_pipeline(),
            verify_each=self.config.verify_between_passes,
            post_pass_hook=self._guard_hook() if self.config.verify_guards else None,
            tracer=tracer,
        )
        pm.run(module, ctx)
        if self.config.verify_guards:
            self._sanitize_final(module, ctx)
        elapsed = time.perf_counter() - started
        if tracer is not None and tracer.enabled:
            tracer.counter(
                "compile", started * 1e6, track="wall",
                seconds=elapsed,
                instructions_before=insts_before,
                instructions_after=module.instruction_count(),
            )
        return CompileResult(
            module=module,
            config=self.config,
            ctx=ctx,
            instructions_before=insts_before,
            instructions_after=module.instruction_count(),
            mem_instructions_before=mems_before,
            mem_instructions_after=module.memory_access_count(),
            compile_seconds=elapsed,
        )
