"""Promote stack slots to SSA registers (LLVM's mem2reg).

Unoptimized compiler output keeps every local variable in an ``alloca``
and re-loads it at each use — which is exactly why the paper's default
NOELLE pipeline saw 6x more memory instructions on NAS FT (§4.5): each
of those loads/stores would get a guard.  Promoting the slots to SSA
values removes them wholesale.

An alloca is *promotable* when its address is used only as the direct
pointer of loads and stores (never stored itself, passed to a call, or
offset with gep).  Promotion uses phi placement at join blocks:

* ``end(var, block)``   = last value stored in ``block``, else the
  block-entry value;
* ``entry(var, block)`` = the single predecessor's ``end``, or a phi
  over all predecessors' ``end`` values at join blocks (loop headers
  included), or undef at the function entry;

followed by trivial-phi elimination.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.types import IRType
from repro.ir.values import UndefValue, Value


def _promotable_allocas(func: Function) -> Dict[Alloca, IRType]:
    """Allocas used only as direct load/store pointers, with one type."""
    candidates: Dict[Alloca, Optional[IRType]] = {}
    for inst in func.instructions():
        if isinstance(inst, Alloca):
            candidates[inst] = None
    for inst in func.instructions():
        for op in inst.operands:
            if not isinstance(op, Alloca) or op not in candidates:
                continue
            if isinstance(inst, Load) and inst.pointer is op:
                ty = candidates[op]
                if ty is None:
                    candidates[op] = inst.type
                elif ty != inst.type:
                    candidates.pop(op, None)
            elif isinstance(inst, Store) and inst.pointer is op and inst.value is not op:
                ty = candidates[op]
                if ty is None:
                    candidates[op] = inst.value.type
                elif ty != inst.value.type:
                    candidates.pop(op, None)
            else:
                # Address escapes (stored, called, gep'd, compared...).
                candidates.pop(op, None)
    return {a: t for a, t in candidates.items() if t is not None}


class Mem2RegPass(Pass):
    """Classic alloca promotion with phi insertion."""

    name = "mem2reg"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            promoted = self._promote_function(func)
            if promoted:
                ctx.bump(f"{self.name}.allocas_promoted", promoted)

    def _promote_function(self, func: Function) -> int:
        variables = _promotable_allocas(func)
        if not variables:
            return 0
        cfg = CFG(func)
        reachable = cfg.reachable()

        # Pre-place one phi per variable at every reachable join block.
        placeholder: Dict[Tuple[Alloca, BasicBlock], Phi] = {}
        for block in func.blocks:
            if block not in reachable or len(cfg.preds(block)) < 2:
                continue
            for var, ty in variables.items():
                phi = Phi(ty)
                phi.name = func.unique_name(f"m2r.{var.name or 'v'}")
                block.insert(0, phi)
                placeholder[(var, block)] = phi

        # end(var, block): memoized; entry(var, block) derived.
        end_cache: Dict[Tuple[Alloca, BasicBlock], Value] = {}

        def last_store_value(var: Alloca, block: BasicBlock) -> Optional[Value]:
            result: Optional[Value] = None
            for inst in block.instructions:
                if isinstance(inst, Store) and inst.pointer is var:
                    result = inst.value
            return result

        def entry_value(var: Alloca, block: BasicBlock) -> Value:
            phi = placeholder.get((var, block))
            if phi is not None:
                return phi
            preds = [p for p in cfg.preds(block) if p in reachable]
            if not preds:
                return UndefValue(variables[var], name=f"undef.{var.name}")
            return end_value(var, preds[0])

        def end_value(var: Alloca, block: BasicBlock) -> Value:
            key = (var, block)
            cached = end_cache.get(key)
            if cached is not None:
                return cached
            stored = last_store_value(var, block)
            if stored is not None:
                end_cache[key] = stored
                return stored
            # No store in this block: end == entry.  Join blocks break
            # recursion via their placeholder phis.
            value = entry_value(var, block)
            end_cache[key] = value
            return value

        # Fill phi operands.
        for (var, block), phi in placeholder.items():
            for pred in cfg.preds(block):
                if pred in reachable:
                    phi.add_incoming(end_value(var, pred), pred)

        # The rewrite below deletes stores block by block; an end value
        # computed lazily after that would miss them and fall back to
        # the block-entry value.  Snapshot every end value from the
        # still-pristine IR first.
        for block in func.blocks:
            if block in reachable:
                for var in variables:
                    end_value(var, block)

        # Rewrite loads and drop stores.  A cached end value may itself
        # be a load this rewrite removes; chase it to the live value.
        replaced: Dict[Instruction, Value] = {}

        def resolve(value: Value) -> Value:
            while isinstance(value, Instruction) and value in replaced:
                value = replaced[value]
            return value

        for block in func.blocks:
            if block not in reachable:
                continue
            current: Dict[Alloca, Value] = {}
            for inst in list(block.instructions):
                if isinstance(inst, Load) and isinstance(inst.pointer, Alloca):
                    var = inst.pointer
                    if var not in variables:
                        continue
                    value = current.get(var)
                    if value is None:
                        value = entry_value(var, block)
                    value = resolve(value)
                    replaced[inst] = value
                    func.replace_all_uses(inst, value)
                    block.remove(inst)
                elif isinstance(inst, Store) and isinstance(inst.pointer, Alloca):
                    var = inst.pointer
                    if var not in variables:
                        continue
                    current[var] = inst.value
                    block.remove(inst)

        # Drop the allocas themselves.
        for var in variables:
            if var.parent is not None:
                var.parent.remove(var)

        self._remove_trivial_phis(func)
        return len(variables)

    @staticmethod
    def _remove_trivial_phis(func: Function) -> None:
        changed = True
        while changed:
            changed = False
            for block in func.blocks:
                for phi in list(block.phis()):
                    sources = {v for v, _ in phi.incoming if v is not phi}
                    sources = {
                        v for v in sources
                        if not isinstance(v, UndefValue)
                    } or sources
                    if len(sources) == 1:
                        replacement = next(iter(sources))
                        func.replace_all_uses(phi, replacement)
                        block.remove(phi)
                        changed = True
