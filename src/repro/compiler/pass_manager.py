"""Pass scheduling: a small LLVM-style pass manager.

Passes communicate through a :class:`PassContext`: analyses publish
results there (guard candidates, chunk plans, profiles), transforms
consume them and record statistics.  The context also carries the
compiler configuration so every pass sees the same object size and
policies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import PassError
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.trace.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.profiler import ProfileData
    from repro.compiler.pipeline import CompilerConfig


@dataclass
class PassContext:
    """Shared state threaded through a pipeline run."""

    config: "CompilerConfig"
    profile: Optional["ProfileData"] = None
    #: Free-form blackboard for inter-pass results.
    results: Dict[str, Any] = field(default_factory=dict)
    #: Per-pass statistic counters, keyed "pass_name.stat".
    stats: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    def get_stat(self, key: str) -> int:
        return self.stats.get(key, 0)


class Pass:
    """Base class: a named unit of IR work."""

    #: Override in subclasses.
    name: str = "pass"

    def run(self, module: Module, ctx: PassContext) -> None:
        """Apply the pass to ``module``; results/stats go into ``ctx``."""
        raise NotImplementedError


class PassManager:
    """Runs a pass sequence with optional verification between passes.

    ``post_pass_hook`` (if given) runs after each pass — after the
    structural verifier, so it sees only well-formed IR.  The guard
    pipeline uses it to run the guard-safety sanitizer between stages
    (``CompilerConfig(verify_guards=True)``), which bisects a broken
    invariant to the exact pass that introduced it.

    ``tracer`` (if enabled) records one ``pass`` event per pass on the
    wall-clock track: duration, the IR instruction-count delta, and the
    :class:`PassContext` stat counters the pass bumped.  Pass timing
    includes the between-pass verifier and ``post_pass_hook`` work so
    the trace answers "where did compile time go" end to end.
    """

    def __init__(
        self,
        passes: List[Pass],
        verify_each: bool = True,
        post_pass_hook: Optional[Callable[[Pass, Module, PassContext], None]] = None,
        tracer=None,
    ) -> None:
        if not passes:
            raise PassError("empty pass pipeline")
        self.passes = list(passes)
        self.verify_each = verify_each
        self.post_pass_hook = post_pass_hook
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, module: Module, ctx: PassContext) -> None:
        tracer = self.tracer
        for p in self.passes:
            if tracer.enabled:
                started_us = time.perf_counter() * 1e6
                inst_before = module.instruction_count()
                stats_before = dict(ctx.stats)
            p.run(module, ctx)
            # Every pass may have rewritten IR: drop the interpreter's
            # pre-decoded form so the next run re-lowers current code.
            module.invalidate_decode()
            if self.verify_each:
                try:
                    verify_module(module)
                except Exception as exc:
                    raise PassError(
                        f"IR verification failed after pass {p.name!r}: {exc}"
                    ) from exc
            if self.post_pass_hook is not None:
                self.post_pass_hook(p, module, ctx)
            if tracer.enabled:
                now_us = time.perf_counter() * 1e6
                stats_delta = {
                    k: v - stats_before.get(k, 0)
                    for k, v in ctx.stats.items()
                    if v != stats_before.get(k, 0)
                }
                tracer.pass_event(
                    p.name,
                    ts_us=started_us,
                    dur_us=now_us - started_us,
                    inst_before=inst_before,
                    inst_after=module.instruction_count(),
                    stats=stats_delta,
                )

    def pass_names(self) -> List[str]:
        return [p.name for p in self.passes]
