"""Libc transformation pass.

§3.1: "This pass transforms all memory allocation calls ... in libc
(e.g., malloc, realloc, free) into TrackFM-managed memory runtime
calls.  The TrackFM versions leverage AIFM's region-based allocator
under the covers to allocate remotable memory."

After this pass every allocation the program performs returns a
non-canonical TrackFM pointer, which is what makes the custody check
meaningful.
"""

from __future__ import annotations

from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.instructions import Call
from repro.ir.module import Module

#: libc entry point -> TrackFM runtime call.
ALLOC_REWRITES = {
    "malloc": "tfm_malloc",
    "calloc": "tfm_calloc",
    "realloc": "tfm_realloc",
    "free": "tfm_free",
}


class LibcTransformPass(Pass):
    """Retarget allocation calls at the TrackFM runtime."""

    name = "libc-transform"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, Call) and inst.callee in ALLOC_REWRITES:
                    inst.callee = ALLOC_REWRITES[inst.callee]
                    ctx.bump(f"{self.name}.rewritten")
