"""Pointer-chase (recursive data structure) prefetching — a §5 extension.

The paper: "We expect greater benefits when we can capture information
about recursive data structures [Luk & Mowry]."  This pass captures the
canonical case: a loop walking a linked structure,

    node = node->next

i.e. a pointer phi whose in-loop incoming value is a *load* from a
fixed offset off the phi itself.  Guarded accesses through that phi are
rewritten to ``tfm_chase_deref(ptr, next_offset, stream)``: the runtime
localizes the node and then *greedily prefetches* the node its ``next``
field points at, overlapping the next fetch with this node's work.

Greedy prefetching only sees one node ahead, so — unlike the stride
prefetcher's deep pipeline — it hides at most one round trip per node;
the runtime models that with a shallow (depth-2) prefetch cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.loops import Loop, find_loops
from repro.compiler.guard_analysis import GUARD_MD
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import Call, Gep, Instruction, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.types import I64, PTR
from repro.ir.values import Constant, Value

CHASED_MD = "tfm.chase"

CHASE_DEREF = "tfm_chase_deref"
CHASE_DEREF_WRITE = "tfm_chase_deref_write"


@dataclass
class ChasePattern:
    """One detected ``p = load(p + next_offset)`` recurrence."""

    loop: Loop
    phi: Phi
    next_load: Load
    next_offset: int


def _match_chase(loop: Loop) -> List[ChasePattern]:
    """Find pointer phis stepped by a load from themselves."""
    patterns: List[ChasePattern] = []
    for phi in loop.header.phis():
        if not phi.type.is_pointer() or len(phi.incoming) != 2:
            continue
        inside: Optional[Value] = None
        for value, pred in phi.incoming:
            if pred in loop.blocks:
                inside = value
        if not isinstance(inside, Load) or not inside.type.is_pointer():
            continue
        ptr = inside.pointer
        offset = 0
        if isinstance(ptr, Gep) and ptr.base is phi and isinstance(ptr.index, Constant):
            offset = int(ptr.index.value) * ptr.elem_size
        elif ptr is not phi:
            continue
        patterns.append(
            ChasePattern(loop=loop, phi=phi, next_load=inside, next_offset=offset)
        )
    return patterns


class ChasePrefetchPass(Pass):
    """Rewrite linked-structure walks to chase-prefetching derefs."""

    name = "chase-prefetch"

    def run(self, module: Module, ctx: PassContext) -> None:
        stream = ctx.stats.get("chase-prefetch.streams", 0)
        for func in module.defined_functions():
            loops = find_loops(func)
            for loop in loops:
                for pattern in _match_chase(loop):
                    stream += 1
                    self._apply(func, pattern, stream, ctx)
        ctx.stats["chase-prefetch.streams"] = stream

    def _apply(
        self, func: Function, pattern: ChasePattern, stream: int, ctx: PassContext
    ) -> None:
        loop = pattern.loop
        for block in loop.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, (Load, Store)):
                    continue
                if not inst.metadata.get(GUARD_MD):
                    continue
                ptr = inst.pointer
                if not self._derives_from(ptr, pattern.phi):
                    continue
                callee = (
                    CHASE_DEREF_WRITE if isinstance(inst, Store) else CHASE_DEREF
                )
                # Operands: the access pointer, the node pointer (the phi,
                # whose next field drives the prefetch), the next-field
                # offset, and the stream id.
                deref = Call(
                    PTR,
                    callee,
                    [
                        ptr,
                        pattern.phi,
                        Constant(I64, pattern.next_offset),
                        Constant(I64, stream),
                    ],
                )
                deref.name = func.unique_name("chaseptr")
                block.insert_before(inst, deref)
                inst.replace_uses_of(ptr, deref)
                inst.metadata.pop(GUARD_MD, None)
                inst.metadata[CHASED_MD] = True
                ctx.bump(f"{self.name}.accesses_rewritten")

    @staticmethod
    def _derives_from(ptr: Value, phi: Phi) -> bool:
        """Does ``ptr`` reach ``phi`` through geps only?"""
        node = ptr
        for _ in range(16):
            if node is phi:
                return True
            if isinstance(node, Gep):
                node = node.base
                continue
            return False
        return False
