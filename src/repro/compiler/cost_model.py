"""The loop-chunking cost model (§3.4, Eqs. 1–3, Fig. 6).

Notation from the paper: an object of size *o* holds *d = o/e* elements
of size *e* (the *object density*).  Per object, the naive transform
pays one slow-path guard plus (d-1) fast-path guards:

    C     = (d - 1) c_f + c_s                                   (Eq. 1)

and the chunked transform pays d boundary checks plus one locality
invariant guard — where the paper's c_l folds in the per-loop-entry
chunk setup:

    C_opt = (d - 1) c_b + c_l                                   (Eq. 2)

Chunk when C_opt < C, i.e. when the density exceeds the threshold of
Eq. 3.  Beyond the per-object form, :meth:`ChunkingCostModel.should_chunk`
evaluates the same arithmetic for a whole loop shape (iterations per
entry, objects per entry, number of entries), which is what lets the
profile-guided filter reject the nested, short, low-density loops of
k-means and the analytics aggregations (Figs. 8/15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PassError
from repro.machine.costs import CostTable, DEFAULT_COSTS


@dataclass(frozen=True)
class LoopShape:
    """What the cost model needs to know about one loop's dynamic shape."""

    #: Iterations per loop entry (profile trip count, or a static bound).
    iterations_per_entry: float
    #: Element size in bytes of the strided accesses.
    elem_size: int
    #: How many times the loop is entered (1 for a top-level loop; the
    #: outer trip count for a nested loop).
    entries: float = 1.0
    #: Guarded memory accesses per iteration.
    accesses_per_iteration: int = 1


class ChunkingCostModel:
    """Decides where loop chunking pays off."""

    def __init__(self, object_size: int, costs: CostTable = DEFAULT_COSTS) -> None:
        if object_size <= 0:
            raise PassError("object size must be positive")
        self.object_size = object_size
        self.costs = costs

    # -- the paper's per-object equations ----------------------------------

    def density(self, elem_size: int) -> float:
        """d = o / e."""
        if elem_size <= 0:
            raise PassError("element size must be positive")
        return self.object_size / elem_size

    def naive_cost_per_object(self, elem_size: int) -> float:
        """Eq. 1."""
        d = self.density(elem_size)
        return (d - 1) * self.costs.fast_guard_read_cached + self.costs.slow_guard_read_cached

    def chunked_cost_per_object(self, elem_size: int, amortized_setup: float = 0.0) -> float:
        """Eq. 2; ``amortized_setup`` is chunk setup divided over the
        objects of one loop entry (the paper folds it into c_l)."""
        d = self.density(elem_size)
        return (
            (d - 1) * self.costs.boundary_check
            + self.costs.locality_guard
            + amortized_setup
        )

    def density_threshold(self) -> float:
        """Eq. 3's crossover (~722 elements/object with default costs)."""
        return self.costs.chunking_crossover_density()

    # -- whole-loop decision --------------------------------------------------

    def loop_costs(self, shape: LoopShape) -> tuple:
        """(naive_cycles, chunked_cycles) guard overhead for the loop."""
        n = shape.iterations_per_entry * shape.accesses_per_iteration
        if n <= 0:
            return 0.0, 0.0
        d = self.density(shape.elem_size)
        objects = max(1.0, n / d)
        c = self.costs
        naive = (
            (n - objects) * c.fast_guard_read_cached
            + objects * c.slow_guard_read_cached
        )
        chunked = (
            c.chunk_setup
            + n * c.boundary_check
            + objects * c.locality_guard
        )
        return naive * shape.entries, chunked * shape.entries

    def prefetch_issue_distance(
        self,
        elem_size: int,
        accesses_per_iteration: int = 1,
        fetch_cycles: float = 0.0,
        max_distance: int = 64,
    ) -> int:
        """How many objects ahead a programmed prefetch should run.

        3PO's framing: a prefetch issued D objects early is useful when
        D x (cycles the loop spends per object) covers the fetch
        latency.  Per object the chunked loop spends d boundary checks
        plus d local accesses plus one locality guard (Eq. 2's terms);
        the fetch latency defaults to the slow-path remote guard cost —
        the cycles a demand miss would stall for.
        """
        if fetch_cycles <= 0:
            fetch_cycles = self.costs.slow_guard_remote
        d = self.density(elem_size) * max(1, accesses_per_iteration)
        per_object = (
            d * (self.costs.boundary_check + self.costs.local_access)
            + self.costs.locality_guard
        )
        if per_object <= 0:
            return 1
        distance = -(-fetch_cycles // per_object)
        return int(max(1, min(max_distance, distance)))

    # -- paging-vs-object crossover (the adaptive hybrid's selector) --------

    def page_tier_cost(
        self,
        accesses: float,
        distinct_pages: float,
        resident_fraction: float = 0.0,
        reclaim_cycles: float = 0.0,
        wire_page_cycles: float = 0.0,
    ) -> float:
        """Window cycles a page tier charges over the raw accesses.

        Hits are guard-free; each non-resident page pays one amortized
        remote fault, the reclaim it forces, and the wire serialization
        of the whole page (I/O amplification).  Flat in access count —
        which is exactly why paging wins dense regions.
        """
        del accesses  # page hits cost nothing beyond the local access
        miss = 1.0 - resident_fraction
        c = self.costs
        return distinct_pages * miss * (
            c.fastswap_fault_remote_read + reclaim_cycles + wire_page_cycles
        )

    def object_tier_cost(
        self,
        accesses: float,
        distinct_objects: float,
        resident_fraction: float = 0.0,
        wire_object_cycles: float = 0.0,
    ) -> float:
        """Window cycles an object tier charges over the raw accesses.

        Every access pays a cached fast-path guard; each non-resident
        object touched pays one remote slow-path guard plus the object's
        (small) wire serialization.  Linear in access count — why object
        fetch wins sparse regions.
        """
        miss = 1.0 - resident_fraction
        c = self.costs
        return (
            accesses * c.fast_guard_read_cached
            + distinct_objects * miss * (c.slow_guard_remote + wire_object_cycles)
        )

    def prefer_pages(
        self,
        accesses: float,
        distinct_objects: float,
        distinct_pages: float,
        resident_fraction: float = 0.0,
        reclaim_cycles: float = 0.0,
        wire_object_cycles: float = 0.0,
        wire_page_cycles: float = 0.0,
    ) -> bool:
        """True when the page tier is predicted cheaper for the window."""
        return self.page_tier_cost(
            accesses, distinct_pages, resident_fraction, reclaim_cycles,
            wire_page_cycles,
        ) <= self.object_tier_cost(
            accesses, distinct_objects, resident_fraction, wire_object_cycles
        )

    def paging_crossover_density(
        self,
        objects_touched_per_page: float = 1.0,
        resident_fraction: float = 0.0,
        reclaim_cycles: float = 0.0,
        wire_object_cycles: float = 0.0,
        wire_page_cycles: float = 0.0,
    ) -> float:
        """Accesses/page/window where the two tier costs intersect."""
        return self.costs.paging_crossover_density(
            objects_touched_per_page=objects_touched_per_page,
            resident_fraction=resident_fraction,
            reclaim_cycles=reclaim_cycles,
            wire_object_cycles=wire_object_cycles,
            wire_page_cycles=wire_page_cycles,
        )

    def should_chunk(self, shape: LoopShape) -> bool:
        """True when the chunked transform is predicted cheaper."""
        naive, chunked = self.loop_costs(shape)
        return chunked < naive

    def predicted_speedup(self, shape: LoopShape, body_cycles: float = 15.0) -> float:
        """Whole-loop speedup of chunking, including loop body cost.

        This is the quantity Fig. 6 plots (y-axis: "speedup vs baseline
        transform") as density varies.
        """
        n = shape.iterations_per_entry * shape.accesses_per_iteration * shape.entries
        naive, chunked = self.loop_costs(shape)
        base = n * body_cycles
        if base + chunked <= 0:
            return 1.0
        return (base + naive) / (base + chunked)
