"""Guard transformation: wrap candidate accesses in TrackFM guards.

§3.3: every remaining guard-candidate load/store is rewritten so the
pointer passes through the guard before the access.  In native code the
guard inlines to the ~14-instruction fast path of Fig. 4b; at our IR
level it is a call to ``tfm_guard_read``/``tfm_guard_write`` that
returns the canonical (localized) address the access then uses.
"""

from __future__ import annotations

from repro.compiler.chunk_transform import CHUNKED_MD
from repro.compiler.guard_analysis import GUARD_MD
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.ir.types import PTR

GUARDED_MD = "tfm.guarded"

GUARD_READ = "tfm_guard_read"
GUARD_WRITE = "tfm_guard_write"

#: Native instructions one inlined guard expands to (fast path, Fig. 4b)
#: — used by the pipeline's code-size estimate (§4.6).
GUARD_NATIVE_INSTRUCTIONS = 14


class GuardTransformPass(Pass):
    """Insert guard calls before every marked, un-chunked access."""

    name = "guard-transform"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            for inst in func.instructions():
                if not isinstance(inst, (Load, Store)):
                    continue
                if not inst.metadata.get(GUARD_MD):
                    continue
                if inst.metadata.get(CHUNKED_MD) or inst.metadata.get(GUARDED_MD):
                    continue
                block = inst.parent
                assert block is not None
                ptr = inst.pointer
                callee = GUARD_WRITE if isinstance(inst, Store) else GUARD_READ
                guard = Call(PTR, callee, [ptr])
                guard.name = func.unique_name("guarded")
                block.insert_before(inst, guard)
                inst.replace_uses_of(ptr, guard)
                inst.metadata[GUARDED_MD] = True
                # Back-link guard -> access: the sanitizer (and anyone
                # reading printed IR) can pair each guard with the
                # dereference it protects.
                guard.metadata[GUARDED_MD] = inst
                ctx.bump(f"{self.name}.guards_inserted")
