"""CFG simplification: drop unreachable blocks, merge trivial chains.

Transform passes leave debris — the chunk transform splits edges, the
offload pass bypasses loops — and the verifier's phi/predecessor checks
make stale blocks an outright hazard.  This pass cleans up:

* blocks unreachable from the entry are deleted (phi edges from them
  are pruned);
* a block whose only predecessor ends in an unconditional branch and
  whose predecessor has no other successors is merged into it;
* conditional branches on constant conditions become unconditional.
"""

from __future__ import annotations

from typing import List, Set

from repro.analysis.cfg import CFG
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Br, CondBr, Phi
from repro.ir.module import Module
from repro.ir.values import Constant


class SimplifyCFGPass(Pass):
    """Iterative CFG cleanup to a fixed point."""

    name = "simplifycfg"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            changed = True
            guard = 0
            while changed and guard < 100:
                guard += 1
                changed = (
                    self._fold_constant_branches(func, ctx)
                    or self._remove_unreachable(func, ctx)
                    or self._merge_chains(func, ctx)
                )

    # -- constant branches ------------------------------------------------

    def _fold_constant_branches(self, func: Function, ctx: PassContext) -> bool:
        changed = False
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, CondBr):
                continue
            cond = term.condition
            if not isinstance(cond, Constant):
                continue
            taken = term.if_true if cond.value else term.if_false
            dropped = term.if_false if cond.value else term.if_true
            block.remove(term)
            block.append(Br(taken))
            if dropped is not taken:
                self._prune_phi_edges(dropped, block)
            ctx.bump(f"{self.name}.branches_folded")
            changed = True
        return changed

    # -- unreachable blocks --------------------------------------------------

    def _remove_unreachable(self, func: Function, ctx: PassContext) -> bool:
        cfg = CFG(func)
        reachable = cfg.reachable()
        dead = [b for b in func.blocks if b not in reachable]
        if not dead:
            return False
        dead_set = set(dead)
        for block in func.blocks:
            if block in dead_set:
                continue
            for phi in block.phis():
                phi.incoming = [
                    (v, pred) for v, pred in phi.incoming if pred not in dead_set
                ]
                phi.operands = [v for v, _ in phi.incoming]
        for block in dead:
            func.blocks.remove(block)
            ctx.bump(f"{self.name}.blocks_removed")
        return True

    # -- chain merging ----------------------------------------------------

    def _merge_chains(self, func: Function, ctx: PassContext) -> bool:
        cfg = CFG(func)
        for block in list(func.blocks):
            if block is func.entry:
                continue
            preds = cfg.preds(block)
            if len(preds) != 1:
                continue
            pred = preds[0]
            term = pred.terminator
            if not isinstance(term, Br) or term.target is not block:
                continue
            if block.phis():
                # Single-pred phis are trivially replaceable first.
                for phi in list(block.phis()):
                    value = phi.incoming_for(pred)
                    func.replace_all_uses(phi, value)
                    block.remove(phi)
            # Splice block's instructions into pred.
            pred.remove(term)
            for inst in list(block.instructions):
                block.remove(inst)
                pred.instructions.append(inst)
                inst.parent = pred
            # Successor phis must now name pred instead of block.
            new_term = pred.terminator
            if new_term is not None:
                for succ in new_term.successors():
                    for phi in succ.phis():
                        phi.incoming = [
                            (v, pred if blk is block else blk)
                            for v, blk in phi.incoming
                        ]
            func.blocks.remove(block)
            ctx.bump(f"{self.name}.blocks_merged")
            return True
        return False

    @staticmethod
    def _prune_phi_edges(block: BasicBlock, from_block: BasicBlock) -> None:
        for phi in block.phis():
            phi.incoming = [
                (v, pred) for v, pred in phi.incoming if pred is not from_block
            ]
            phi.operands = [v for v, _ in phi.incoming]
