"""Dead-store elimination for stack slots.

Complements mem2reg: an alloca whose address never escapes and whose
contents are *never loaded* is pure scratch — every store to it (and
the alloca itself) can go.  Unoptimized compiler output is full of
these after other passes copy values out of slots, and each dead store
would otherwise survive to (harmlessly but wastefully) bloat the
instruction counts the §4.6 statistics track.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Load, Store
from repro.ir.module import Module


class DeadStoreEliminationPass(Pass):
    """Remove never-loaded, never-escaping stack slots and their stores."""

    name = "dse"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            self._process(func, ctx)

    def _process(self, func: Function, ctx: PassContext) -> None:
        dead: Set[Alloca] = set()
        for inst in func.instructions():
            if isinstance(inst, Alloca):
                dead.add(inst)
        for inst in func.instructions():
            for op in inst.operands:
                if not isinstance(op, Alloca) or op not in dead:
                    continue
                if isinstance(inst, Store) and inst.pointer is op and inst.value is not op:
                    continue  # a store TO the slot keeps it a candidate
                # Loaded, escaped, or used as data: not dead.
                dead.discard(op)
        if not dead:
            return
        for inst in list(func.instructions()):
            if isinstance(inst, Store) and inst.pointer in dead:
                assert inst.parent is not None
                inst.parent.remove(inst)
                ctx.bump(f"{self.name}.stores_removed")
        for slot in dead:
            if slot.parent is not None:
                slot.parent.remove(slot)
                ctx.bump(f"{self.name}.slots_removed")
