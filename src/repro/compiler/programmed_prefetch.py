"""Programmed prefetch schedules for oblivious chunked loops.

The stride prefetcher (§4.3) must *learn* a loop's stride at run time:
with a confidence threshold of 2 it burns ~3 demand misses per loop
entry before any prefetch issues, and it can never run further ahead
than its fixed depth.  But the access auditor
(:mod:`repro.analysis.oblivious`) proves many chunked loops *oblivious*:
their address streams are closed-form affine functions known at compile
time.  3PO's insight (PAPERS.md, arxiv 2207.07688) is that such streams
need no learning at all — the compiler can program the exact schedule.

This pass runs right after the chunk transformation.  For every chunked
access whose symbolic stream is exact (base, offset, stride and trip
count all statically known) it plants

    tfm_prefetch_sched(base, offset, stride, trips, distance, stream)

in the loop preheader, after the ``tfm_chunk_begin`` calls.  The
runtime lowers the affine form to the distinct first-touch object ids,
primes the first ``distance`` of them before the loop's first
iteration, and keeps the issue window ``distance`` objects ahead —
``distance`` coming from the cost model's fetch-latency/consume-rate
ratio (:meth:`ChunkingCostModel.prefetch_issue_distance`).

Streams that are opaque or partial are left to the stride prefetcher;
emitting a schedule for them would fetch garbage (diagnostic TFM-P304).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import find_loops
from repro.analysis.symbolic import SymbolicAddressAnalysis, SymbolicStream
from repro.compiler.chunk_transform import CHUNK_DEREF, CHUNK_DEREF_WRITE
from repro.compiler.cost_model import ChunkingCostModel
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Store
from repro.ir.module import Module
from repro.ir.types import I64, VOID
from repro.ir.values import Argument, Constant, Value

PREFETCH_SCHED = "tfm_prefetch_sched"

#: Don't emit schedules for trivially short streams: the priming call
#: costs more than the one or two learning misses it would save.
MIN_SCHEDULED_TRIPS = 4


class ProgrammedPrefetchPass(Pass):
    """Lower exact affine streams to ``tfm_prefetch_sched`` intrinsics."""

    name = "programmed-prefetch"

    def run(self, module: Module, ctx: PassContext) -> None:
        config = ctx.config
        cost_model = ChunkingCostModel(config.object_size, config.costs)
        for func in module.defined_functions():
            self._run_function(func, cost_model, ctx)

    def _run_function(
        self, func: Function, cost_model: ChunkingCostModel, ctx: PassContext
    ) -> None:
        loop_info = find_loops(func)
        if not list(loop_info):
            return
        analysis = SymbolicAddressAnalysis(func, loop_info)
        cfg = CFG(func)
        dom = DominatorTree(cfg)
        for loop in loop_info:
            preheader = loop.preheader(cfg)
            if preheader is None:
                continue
            emitted = False
            for access in analysis.loop_accesses(loop):
                deref = self._chunk_deref_of(access)
                if deref is None:
                    continue
                stream_id = deref.args[1]
                if not isinstance(stream_id, Constant):
                    continue
                sym = analysis.stream_of(access)
                if not self._schedulable(sym):
                    ctx.bump(f"{self.name}.streams_unschedulable")
                    continue
                if not self._available_in(sym.base, preheader, dom):
                    ctx.bump(f"{self.name}.skipped_base_unavailable")
                    continue
                distance = cost_model.prefetch_issue_distance(sym.elem_size)
                sched = Call(
                    VOID,
                    PREFETCH_SCHED,
                    [
                        sym.base,
                        Constant(I64, sym.offset),
                        Constant(I64, sym.stride),
                        Constant(I64, sym.trips),
                        Constant(I64, distance),
                        Constant(I64, int(stream_id.value)),
                    ],
                )
                term = preheader.terminator
                assert term is not None
                preheader.insert_before(term, sched)
                emitted = True
                ctx.bump(f"{self.name}.schedules_emitted")
            if emitted:
                ctx.bump(f"{self.name}.loops_programmed")

    @staticmethod
    def _chunk_deref_of(access: Instruction) -> Optional[Call]:
        """The ``tfm_chunk_deref`` call feeding a chunked access."""
        if not isinstance(access, (Load, Store)):
            return None
        ptr = access.pointer
        if isinstance(ptr, Call) and ptr.callee in (CHUNK_DEREF, CHUNK_DEREF_WRITE):
            return ptr
        return None

    @staticmethod
    def _schedulable(sym: Optional[SymbolicStream]) -> bool:
        return (
            sym is not None
            and sym.exact
            and sym.base is not None
            and sym.stride != 0
            and sym.trips is not None
            and sym.trips >= MIN_SCHEDULED_TRIPS
        )

    @staticmethod
    def _available_in(base: Value, preheader, dom: DominatorTree) -> bool:
        """Can ``base`` be referenced from the preheader?"""
        if isinstance(base, Argument):
            return True
        if isinstance(base, Instruction):
            block = base.parent
            return block is not None and dom.dominates(block, preheader)
        return False
