"""Runtime-initialization pass.

§3.1: "To make far memory transparent to programmers, this pass inserts
hooks in the program's main function to initialize TrackFM's runtime
system."
"""

from __future__ import annotations

from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.instructions import Call
from repro.ir.module import Module
from repro.ir.types import VOID

INIT_HOOK = "tfm_runtime_init"


class RuntimeInitPass(Pass):
    """Insert ``tfm_runtime_init()`` at the top of ``main``."""

    name = "runtime-init"

    def __init__(self, entry: str = "main") -> None:
        self.entry = entry

    def run(self, module: Module, ctx: PassContext) -> None:
        if not module.has_function(self.entry):
            return
        func = module.get_function(self.entry)
        if func.is_declaration:
            return
        if func.metadata.get("tfm.runtime_initialized"):
            return
        entry_block = func.entry
        hook = Call(VOID, INIT_HOOK, [])
        entry_block.insert(entry_block.first_non_phi_index(), hook)
        func.metadata["tfm.runtime_initialized"] = True
        ctx.bump(f"{self.name}.hooks_inserted")
