"""Loop-chunking analysis.

§3.4: "The analysis pass for the loop chunking optimization searches
for spatially local memory accesses that occur in loops ... To identify
such memory accesses, TrackFM makes use of NOELLE's induction variable
analysis."

A guarded access is a chunking candidate when its pointer is

* ``gep(base, iv, elem_size)`` with ``base`` loop-invariant and ``iv``
  an induction variable of the loop (stride = iv.step * elem_size), or
* a *pointer* induction variable itself (stride = its byte step).

Candidates are then filtered by policy: chunk everything (the "all
loops" lines of Figs. 8/15), nothing, or what the cost model — fed with
profile trip counts when available — predicts profitable ("high-density
loops only").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.induction import InductionAnalysis, InductionVariable
from repro.analysis.loops import Loop, find_loops
from repro.compiler.cost_model import ChunkingCostModel, LoopShape
from repro.compiler.guard_analysis import GUARD_MD
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import Gep, Instruction, Load, Phi, Store
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, Value


@dataclass
class ChunkCandidate:
    """One strided access eligible for chunking."""

    access: Instruction
    iv: InductionVariable
    #: Byte stride between consecutive touches of this pointer.
    stride_bytes: int
    #: Bytes read/written per touch.
    elem_size: int


@dataclass
class ChunkPlan:
    """The chunking decision for one loop."""

    function: Function
    loop: Loop
    candidates: List[ChunkCandidate] = field(default_factory=list)
    #: Chosen by the policy filter; transform only runs when True.
    apply: bool = False
    #: Prefetch the stream (constant positive stride + config enabled).
    prefetch: bool = False
    #: Stream id assigned at transform time (one per pointer stream).
    stream_base: int = 0

    def density(self, object_size: int) -> float:
        """Elements per object for the narrowest-strided candidate."""
        strides = [abs(c.stride_bytes) for c in self.candidates if c.stride_bytes]
        if not strides:
            return 0.0
        return object_size / min(strides)


def _pointer_of(access: Instruction) -> Value:
    if isinstance(access, Load):
        return access.pointer
    assert isinstance(access, Store)
    return access.pointer


def _is_loop_invariant(value: Value, loop: Loop) -> bool:
    if isinstance(value, (Constant, Argument)):
        return True
    if isinstance(value, Instruction):
        return value.parent not in loop.blocks
    return True


class ChunkAnalysisPass(Pass):
    """Find and filter chunkable loops; publishes ``chunk_plans``."""

    name = "chunk-analysis"

    def run(self, module: Module, ctx: PassContext) -> None:
        config = ctx.config
        model = ChunkingCostModel(config.object_size, config.costs)
        plans: List[ChunkPlan] = []
        for func in module.defined_functions():
            loops = find_loops(func)
            if not len(loops):
                continue
            ivs = InductionAnalysis(func, loops)
            for loop in loops:
                plan = self._analyze_loop(func, loop, ivs, ctx)
                if plan is not None:
                    self._decide(plan, model, ctx)
                    plans.append(plan)
        ctx.results["chunk_plans"] = plans
        ctx.bump(f"{self.name}.plans", len(plans))
        ctx.bump(
            f"{self.name}.applied", sum(1 for p in plans if p.apply)
        )

    # -- candidate matching ---------------------------------------------------

    def _analyze_loop(
        self,
        func: Function,
        loop: Loop,
        ivs: InductionAnalysis,
        ctx: PassContext,
    ) -> Optional[ChunkPlan]:
        loop_ivs = ivs.ivs(loop)
        if not loop_ivs:
            return None
        plan = ChunkPlan(function=func, loop=loop)
        for block in loop.blocks:
            for inst in block.instructions:
                if not isinstance(inst, (Load, Store)):
                    continue
                if not inst.metadata.get(GUARD_MD):
                    continue
                cand = self._match_candidate(inst, loop, loop_ivs)
                if cand is not None:
                    plan.candidates.append(cand)
                    ctx.bump(f"{self.name}.candidates")
        if not plan.candidates:
            return None
        return plan

    def _match_candidate(
        self,
        access: Instruction,
        loop: Loop,
        loop_ivs: List[InductionVariable],
    ) -> Optional[ChunkCandidate]:
        ptr = _pointer_of(access)
        elem_size = access.type.size_bytes() if isinstance(access, Load) else (
            access.value.type.size_bytes()
        )
        # Pattern 1: gep(base, iv, k) with loop-invariant base.
        if isinstance(ptr, Gep) and ptr.parent in loop.blocks:
            index = ptr.index
            for iv in loop_ivs:
                if index is iv.phi or index is iv.update:
                    if _is_loop_invariant(ptr.base, loop):
                        return ChunkCandidate(
                            access=access,
                            iv=iv,
                            stride_bytes=iv.step * ptr.elem_size,
                            elem_size=max(elem_size, 1),
                        )
        # Pattern 2: the pointer is itself a pointer IV.
        for iv in loop_ivs:
            if iv.is_pointer and (ptr is iv.phi or ptr is iv.update):
                return ChunkCandidate(
                    access=access,
                    iv=iv,
                    stride_bytes=iv.step,
                    elem_size=max(elem_size, 1),
                )
        return None

    # -- policy filter --------------------------------------------------------

    def _decide(self, plan: ChunkPlan, model: ChunkingCostModel, ctx: PassContext) -> None:
        from repro.compiler.pipeline import ChunkingPolicy  # cycle-free import

        config = ctx.config
        policy = config.chunking
        if policy is ChunkingPolicy.NONE:
            plan.apply = False
            return
        if policy is ChunkingPolicy.ALL:
            plan.apply = True
        else:
            plan.apply = self._cost_model_approves(plan, model, ctx)
        if plan.apply:
            stride = plan.candidates[0].stride_bytes
            plan.prefetch = config.enable_prefetch and stride > 0
            if plan.prefetch:
                ctx.bump(f"{self.name}.prefetch_streams")

    def _cost_model_approves(
        self, plan: ChunkPlan, model: ChunkingCostModel, ctx: PassContext
    ) -> bool:
        shape = self._loop_shape(plan, ctx)
        approved = model.should_chunk(shape)
        if not approved:
            ctx.bump(f"{self.name}.rejected_by_model")
        return approved

    def _loop_shape(self, plan: ChunkPlan, ctx: PassContext) -> LoopShape:
        iv = plan.candidates[0].iv
        stride = max(abs(plan.candidates[0].stride_bytes), 1)
        iterations: float
        entries = 1.0
        profile = ctx.profile
        loop_profile = None
        if profile is not None:
            loop_profile = profile.profile_for(
                plan.function.name, plan.loop.header.name
            )
        if loop_profile is not None:
            iterations = loop_profile.average_trip_count
            entries = float(loop_profile.entries)
        elif iv.trip_count is not None:
            iterations = float(iv.trip_count)
            # A statically-counted nested loop re-enters per outer trip;
            # approximate entries by nesting depth heuristic.
            entries = 1.0
        else:
            iterations = float(ctx.config.assumed_trip_count)
        return LoopShape(
            iterations_per_entry=max(iterations, 1.0),
            elem_size=stride,
            entries=max(entries, 1.0),
            accesses_per_iteration=max(len(plan.candidates), 1),
        )
