"""O1-style pre-optimization.

§4.5: by default NOELLE sees *unoptimized* LLVM output, which inflates
the number of loads/stores — and therefore guards — dramatically (6x
more memory instructions on NAS FT, 4x on SP).  Running a standard
cleanup pipeline before the TrackFM passes fixes this, and "this
experiment led us to change NOELLE's default optimization pipeline
order for use with TrackFM."  The passes here are the relevant subset:
constant folding, store-to-load forwarding / redundant-load
elimination, and dead-code elimination, iterated to a fixed point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.defuse import DefUse
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    Load,
    Phi,
    PtrToInt,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import Constant, Value


def _fold_binop(inst: BinOp) -> Optional[Constant]:
    a, b = inst.lhs, inst.rhs
    if not (isinstance(a, Constant) and isinstance(b, Constant)):
        return None
    op = inst.opcode
    if op.startswith("f"):
        fa, fb = float(a.value), float(b.value)
        table = {"fadd": fa + fb, "fsub": fa - fb, "fmul": fa * fb}
        if op in table:
            return Constant(inst.type, table[op])
        if op == "fdiv" and fb != 0.0:
            return Constant(inst.type, fa / fb)
        return None
    ia, ib = int(a.value), int(b.value)
    if op == "add":
        return Constant(inst.type, ia + ib)
    if op == "sub":
        return Constant(inst.type, ia - ib)
    if op == "mul":
        return Constant(inst.type, ia * ib)
    if op == "and":
        return Constant(inst.type, ia & ib)
    if op == "or":
        return Constant(inst.type, ia | ib)
    if op == "xor":
        return Constant(inst.type, ia ^ ib)
    if op == "sdiv" and ib != 0:
        q = abs(ia) // abs(ib)
        return Constant(inst.type, -q if (ia < 0) != (ib < 0) else q)
    if op == "shl":
        return Constant(inst.type, ia << (ib % 64))
    return None


def _simplify_binop(inst: BinOp) -> Optional[Value]:
    """Algebraic identities: x+0, x-0, x*1, x*0, x&x, x|x."""
    a, b = inst.lhs, inst.rhs
    op = inst.opcode

    def is_const(v: Value, k: int) -> bool:
        return isinstance(v, Constant) and v.type.is_int() and v.value == k

    if op == "add":
        if is_const(b, 0):
            return a
        if is_const(a, 0):
            return b
    if op == "sub" and is_const(b, 0):
        return a
    if op == "mul":
        if is_const(b, 1):
            return a
        if is_const(a, 1):
            return b
        if is_const(a, 0) or is_const(b, 0):
            return Constant(inst.type, 0)
    if op in ("and", "or") and a is b:
        return a
    if op == "xor" and a is b:
        return Constant(inst.type, 0)
    return None


def _fold_icmp(inst: ICmp) -> Optional[Constant]:
    a, b = inst.operands
    if not (isinstance(a, Constant) and isinstance(b, Constant)):
        return None
    if not (a.type.is_int() and b.type.is_int()):
        return None
    ia, ib = int(a.value), int(b.value)
    pred = inst.pred
    if pred.startswith("u"):
        mask = (1 << 64) - 1
        ia, ib = ia & mask, ib & mask
        pred = {"ult": "slt", "ule": "sle", "ugt": "sgt", "uge": "sge"}[pred]
    table = {
        "eq": ia == ib,
        "ne": ia != ib,
        "slt": ia < ib,
        "sle": ia <= ib,
        "sgt": ia > ib,
        "sge": ia >= ib,
    }
    from repro.ir.types import I1

    return Constant(I1, int(table[pred]))


def _fold_select(inst: Select) -> Optional[Value]:
    cond, a, b = inst.operands
    if isinstance(cond, Constant):
        return a if cond.value else b
    if a is b:
        return a
    return None


class ConstantFoldingPass(Pass):
    """Fold constant expressions, comparisons, selects, and identities."""

    name = "constant-folding"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            changed = True
            while changed:
                changed = False
                for inst in func.instructions():
                    replacement: Optional[Value] = None
                    if isinstance(inst, BinOp):
                        replacement = _fold_binop(inst) or _simplify_binop(inst)
                    elif isinstance(inst, ICmp):
                        replacement = _fold_icmp(inst)
                    elif isinstance(inst, Select):
                        replacement = _fold_select(inst)
                    if replacement is not None and replacement is not inst:
                        func.replace_all_uses(inst, replacement)
                        assert inst.parent is not None
                        inst.parent.remove(inst)
                        ctx.bump(f"{self.name}.folded")
                        changed = True


class DeadCodeEliminationPass(Pass):
    """Remove side-effect-free instructions with no users."""

    name = "dce"

    _SAFE = (BinOp, ICmp, FCmp, Gep, Load, Select, Cast, Phi, PtrToInt, Alloca)

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            changed = True
            while changed:
                changed = False
                uses = DefUse(func)
                for inst in func.instructions():
                    if inst.type.is_void() or inst.is_terminator():
                        continue
                    if not isinstance(inst, self._SAFE):
                        continue
                    if uses.has_users(inst):
                        continue
                    assert inst.parent is not None
                    inst.parent.remove(inst)
                    ctx.bump(f"{self.name}.removed")
                    changed = True


class RedundantLoadEliminationPass(Pass):
    """Store-to-load forwarding and redundant-load elimination.

    Within each basic block, track the last known value at each pointer
    SSA name; a later load of the same pointer (same type) reuses it.
    Stores to a *different* pointer kill everything (no alias analysis
    beyond SSA-name identity — conservative), as do calls.
    """

    name = "redundant-load-elim"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            for block in func.blocks:
                available: Dict[Tuple[int, str], Value] = {}
                to_remove: List[Tuple[Instruction, Value]] = []
                for inst in block.instructions:
                    if isinstance(inst, Load):
                        key = (id(inst.pointer), str(inst.type))
                        known = available.get(key)
                        if known is not None and known.type == inst.type:
                            to_remove.append((inst, known))
                        else:
                            available[key] = inst
                    elif isinstance(inst, Store):
                        key = (id(inst.pointer), str(inst.value.type))
                        # A store to one pointer may alias any other.
                        available = {key: inst.value}
                    elif isinstance(inst, Call):
                        available.clear()
                for inst, replacement in to_remove:
                    func.replace_all_uses(inst, replacement)
                    block.remove(inst)
                    ctx.bump(f"{self.name}.loads_removed")


class O1Pipeline(Pass):
    """mem2reg + constant folding + RLE + DCE to a fixed point (bounded)."""

    name = "O1"

    def __init__(self, max_rounds: int = 8) -> None:
        from repro.compiler.dse import DeadStoreEliminationPass
        from repro.compiler.licm import LICMPass
        from repro.compiler.mem2reg import Mem2RegPass
        from repro.compiler.simplify_cfg import SimplifyCFGPass

        self.max_rounds = max_rounds
        self._passes = [
            Mem2RegPass(),
            ConstantFoldingPass(),
            RedundantLoadEliminationPass(),
            LICMPass(),
            DeadStoreEliminationPass(),
            DeadCodeEliminationPass(),
            SimplifyCFGPass(),
        ]

    def run(self, module: Module, ctx: PassContext) -> None:
        before = module.instruction_count()
        for _ in range(self.max_rounds):
            marker = dict(ctx.stats)
            for p in self._passes:
                p.run(module, ctx)
            if ctx.stats == marker:
                break
        ctx.bump(f"{self.name}.instructions_removed", before - module.instruction_count())
