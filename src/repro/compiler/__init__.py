"""The TrackFM compiler: Fig. 2's analysis & transformation pipeline.

Passes, in pipeline order:

1. :class:`O1Pipeline` (optional) — pre-optimization (DCE, redundant
   load elimination, constant folding); §4.5 found that feeding NOELLE
   *unoptimized* IR inflates guard counts 4–6x on NAS FT/SP, so the
   default pipeline runs this first.
2. :class:`RuntimeInitPass` — hooks ``tfm_runtime_init`` into ``main``.
3. :class:`GuardAnalysisPass` — marks heap-may loads/stores (via the
   provenance analysis) as guard candidates.
4. :class:`ChunkAnalysisPass` — finds loops whose accesses stride an
   induction variable; applies the cost model (+ profile data when
   available) to pick chunking candidates.
5. :class:`ChunkTransformPass` — rewrites chunkable accesses to the
   boundary-check/locality-guard form of Fig. 5 (with prefetch flags
   from the prefetch policy).
6. :class:`GuardTransformPass` — wraps every remaining candidate access
   in a full guard.
7. :class:`LibcTransformPass` — retargets malloc/calloc/realloc/free to
   the TrackFM runtime's allocator.
"""

from repro.compiler.pass_manager import (
    Pass,
    PassContext,
    PassManager,
)
from repro.compiler.cost_model import ChunkingCostModel, LoopShape
from repro.compiler.optimize import (
    O1Pipeline,
    DeadCodeEliminationPass,
    RedundantLoadEliminationPass,
    ConstantFoldingPass,
)
from repro.compiler.runtime_init import RuntimeInitPass
from repro.compiler.guard_analysis import GuardAnalysisPass
from repro.compiler.chunk_analysis import ChunkAnalysisPass, ChunkPlan
from repro.compiler.chunk_transform import ChunkTransformPass
from repro.compiler.guard_transform import GuardTransformPass
from repro.compiler.libc_transform import LibcTransformPass
from repro.compiler.pipeline import (
    TrackFMCompiler,
    CompilerConfig,
    CompileResult,
    ChunkingPolicy,
)
from repro.compiler.mem2reg import Mem2RegPass
from repro.compiler.dse import DeadStoreEliminationPass
from repro.compiler.licm import LICMPass
from repro.compiler.simplify_cfg import SimplifyCFGPass
from repro.compiler.heap_pruning import HeapPruningPass
from repro.compiler.chase_prefetch import ChasePrefetchPass
from repro.compiler.programmed_prefetch import ProgrammedPrefetchPass
from repro.compiler.offload import OffloadPass
from repro.compiler.autotune import (
    AutotuneResult,
    AutotuneTrial,
    autotune_object_size,
)
from repro.compiler.size_classes import recommend_object_sizes

__all__ = [
    "Pass",
    "PassContext",
    "PassManager",
    "ChunkingCostModel",
    "LoopShape",
    "O1Pipeline",
    "DeadCodeEliminationPass",
    "RedundantLoadEliminationPass",
    "ConstantFoldingPass",
    "RuntimeInitPass",
    "GuardAnalysisPass",
    "ChunkAnalysisPass",
    "ChunkPlan",
    "ChunkTransformPass",
    "GuardTransformPass",
    "LibcTransformPass",
    "TrackFMCompiler",
    "CompilerConfig",
    "CompileResult",
    "ChunkingPolicy",
    "Mem2RegPass",
    "DeadStoreEliminationPass",
    "LICMPass",
    "SimplifyCFGPass",
    "HeapPruningPass",
    "ChasePrefetchPass",
    "ProgrammedPrefetchPass",
    "OffloadPass",
    "AutotuneResult",
    "AutotuneTrial",
    "autotune_object_size",
    "recommend_object_sizes",
]
