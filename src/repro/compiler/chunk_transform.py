"""Loop-chunking transformation (Fig. 5's right-hand side).

For each approved :class:`ChunkPlan`:

* the loop's preheader gains a ``tfm_chunk_begin(stream, prefetch)``
  call (Fig. 5's ``tfm_init``/``tfm_rw`` — the chunk-state setup whose
  cost the cost model charges per loop entry);
* each candidate access's pointer is routed through
  ``tfm_chunk_deref(ptr, stream)``, which performs the 3-instruction
  boundary check and, at object boundaries, the locality-invariant
  guard that pins the next object;
* every exit edge is split and gains ``tfm_chunk_end(stream)`` so the
  pinned object is released when the loop is left.

Chunked accesses lose their ``tfm.guard`` mark so the later guard
transformation leaves them alone.
"""

from __future__ import annotations

from typing import List

from repro.analysis.cfg import CFG
from repro.compiler.chunk_analysis import ChunkPlan
from repro.compiler.guard_analysis import GUARD_MD
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Br, Call, CondBr, Load, Store
from repro.ir.module import Module
from repro.ir.types import I64, PTR, VOID
from repro.ir.values import Constant

CHUNKED_MD = "tfm.chunked"

CHUNK_BEGIN = "tfm_chunk_begin"
CHUNK_DEREF = "tfm_chunk_deref"
CHUNK_DEREF_WRITE = "tfm_chunk_deref_write"
CHUNK_END = "tfm_chunk_end"


def split_edge(func: Function, pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the edge ``pred -> succ``; returns it.

    The new block unconditionally branches to ``succ``; ``pred``'s
    terminator is retargeted and ``succ``'s phis are updated to receive
    their old ``pred`` values from the new block.
    """
    edge = func.insert_block_after(pred, name=func.unique_name("edge"))
    term = pred.terminator
    assert term is not None
    if isinstance(term, Br):
        if term.target is succ:
            term.target = edge
    elif isinstance(term, CondBr):
        if term.if_true is succ:
            term.if_true = edge
        if term.if_false is succ:
            term.if_false = edge
    edge.append(Br(succ))
    for phi in succ.phis():
        phi.incoming = [
            (value, edge if blk is pred else blk) for value, blk in phi.incoming
        ]
    return edge


class ChunkTransformPass(Pass):
    """Apply the approved chunk plans to the IR."""

    name = "chunk-transform"

    def run(self, module: Module, ctx: PassContext) -> None:
        plans: List[ChunkPlan] = ctx.results.get("chunk_plans", [])
        next_stream = 0
        for plan in plans:
            if not plan.apply:
                continue
            if self._apply_plan(plan, next_stream, ctx):
                plan.stream_base = next_stream
                next_stream += len(plan.candidates)
                ctx.bump(f"{self.name}.loops_chunked")

    def _apply_plan(
        self, plan: ChunkPlan, stream_base: int, ctx: PassContext
    ) -> bool:
        func = plan.function
        loop = plan.loop
        cfg = CFG(func)
        preheader = loop.preheader(cfg)
        if preheader is None:
            ctx.bump(f"{self.name}.skipped_no_preheader")
            return False
        prefetch_flag = Constant(I64, 1 if plan.prefetch else 0)

        # One stream per candidate pointer, set up in the preheader.
        term = preheader.terminator
        assert term is not None
        for i, _cand in enumerate(plan.candidates):
            begin = Call(
                VOID, CHUNK_BEGIN, [Constant(I64, stream_base + i), prefetch_flag]
            )
            preheader.insert_before(term, begin)

        # Route each access's pointer through the chunk deref.
        for i, cand in enumerate(plan.candidates):
            access = cand.access
            block = access.parent
            assert block is not None
            assert isinstance(access, (Load, Store))
            ptr = access.pointer
            callee = CHUNK_DEREF_WRITE if isinstance(access, Store) else CHUNK_DEREF
            deref = Call(PTR, callee, [ptr, Constant(I64, stream_base + i)])
            deref.name = func.unique_name("chunkptr")
            block.insert_before(access, deref)
            access.replace_uses_of(ptr, deref)
            access.metadata[CHUNKED_MD] = True
            access.metadata.pop(GUARD_MD, None)
            ctx.bump(f"{self.name}.accesses_chunked")

        # Tear down on every exit edge (split so out-of-loop paths that
        # never entered the loop are unaffected).
        for inside, outside in loop.exit_edges(cfg):
            edge = split_edge(func, inside, outside)
            edge_term = edge.terminator
            assert edge_term is not None
            for i, _cand in enumerate(plan.candidates):
                end = Call(VOID, CHUNK_END, [Constant(I64, stream_base + i)])
                edge.insert_before(edge_term, end)
        return True
