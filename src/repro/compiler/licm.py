"""Loop-invariant code motion — including invariant *loads*.

§6 places TrackFM in the lineage of compiler-assisted DSM systems whose
central optimization was "aggregation/hoisting of guards."  Hoisting a
loop-invariant load out of a loop does exactly that here: the load (and
therefore its guard) executes once per loop entry instead of once per
iteration.

Safety rules (conservative, no alias analysis beyond instruction kinds):

* arithmetic/gep/compare/select/cast instructions hoist when all their
  operands are defined outside the loop;
* a ``load`` hoists only when additionally the loop contains no stores
  and no calls (anything else might alias);
* nothing hoists unless the loop has a preheader, and loads only hoist
  from blocks that execute on every iteration (the header), so a
  guarded trap cannot be introduced on a path that never ran.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.cfg import CFG
from repro.analysis.loops import Loop, find_loops
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    IntToPtr,
    Load,
    PtrToInt,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Value

_PURE = (BinOp, ICmp, FCmp, Gep, Select, Cast, PtrToInt, IntToPtr)


class LICMPass(Pass):
    """Hoist loop-invariant computation (and safe loads) to preheaders."""

    name = "licm"

    def run(self, module: Module, ctx: PassContext) -> None:
        for func in module.defined_functions():
            loops = find_loops(func)
            if not len(loops):
                continue
            cfg = CFG(func)
            # Innermost first: hoisted code may become invariant in the
            # parent loop on the next pass run.
            for loop in sorted(loops, key=lambda l: -l.depth):
                self._process_loop(func, loop, cfg, ctx)

    def _process_loop(
        self, func: Function, loop: Loop, cfg: CFG, ctx: PassContext
    ) -> None:
        preheader = loop.preheader(cfg)
        if preheader is None:
            return
        term = preheader.terminator
        if term is None:
            return
        has_memory_hazard = any(
            isinstance(inst, (Store, Call)) for inst in loop.instructions()
        )
        hoisted: Set[Instruction] = set()
        changed = True
        while changed:
            changed = False
            for block in list(loop.blocks):
                for inst in list(block.instructions):
                    if inst in hoisted or inst.is_terminator():
                        continue
                    if not self._hoistable(inst, loop, hoisted, has_memory_hazard, block):
                        continue
                    block.remove(inst)
                    preheader.insert_before(term, inst)
                    hoisted.add(inst)
                    ctx.bump(f"{self.name}.hoisted")
                    if isinstance(inst, Load):
                        ctx.bump(f"{self.name}.loads_hoisted")
                    changed = True

    def _hoistable(
        self,
        inst: Instruction,
        loop: Loop,
        hoisted: Set[Instruction],
        has_memory_hazard: bool,
        block,
    ) -> bool:
        if isinstance(inst, Load):
            if has_memory_hazard:
                return False
            # Only from blocks executing every iteration: the header.
            if block is not loop.header:
                return False
        elif not isinstance(inst, _PURE):
            return False
        return all(self._invariant(op, loop, hoisted) for op in inst.operands)

    @staticmethod
    def _invariant(value: Value, loop: Loop, hoisted: Set[Instruction]) -> bool:
        if isinstance(value, Instruction):
            return value in hoisted or value.parent not in loop.blocks
        return True
