"""Profile-guided heap pruning (§5's MaPHeA-style extension).

The paper: "TrackFM could also benefit from a profiling stage that
prunes the set of heap allocations available for remoting based on
access frequency ... we suspect incorporating a similar approach into
the TrackFM middle-end transformations would be straightforward."

This pass does it: using the loop-coverage profile, it scores each
statically-sized allocation site by *dynamic accesses per byte*, pins
the hottest sites into local memory (up to a budget), and — the payoff
— **elides guards entirely** on accesses whose pointer provably derives
only from pinned sites.  Pinned allocations return canonical pointers
(they are ordinary local memory now), so even un-elided guards
degenerate to the 4-cycle custody miss.

Scheduling: after guard analysis (it consumes ``tfm.guard`` marks),
before chunking and the guard transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.provenance import HEAP_ALLOC_FUNCTIONS
from repro.compiler.guard_analysis import GUARD_MD
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Call,
    Gep,
    Instruction,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, Value

#: The local-heap allocation entry point pinned sites are rewritten to.
PINNED_ALLOC = "tfm_malloc_pinned"

PINNED_MD = "tfm.pinned_alloc"
ELIDED_MD = "tfm.guard_elided"


@dataclass
class AllocationSite:
    """One statically-sized heap allocation call."""

    call: Call
    function: Function
    size_bytes: int
    dynamic_accesses: float = 0.0

    @property
    def heat(self) -> float:
        """Accesses per byte: the pinning priority."""
        if self.size_bytes <= 0:
            return 0.0
        return self.dynamic_accesses / self.size_bytes


def _static_alloc_size(call: Call) -> Optional[int]:
    if call.callee in ("malloc", "tfm_malloc"):
        arg = call.args[0]
        if isinstance(arg, Constant):
            return int(arg.value)
    if call.callee in ("calloc", "tfm_calloc") and len(call.args) == 2:
        a, b = call.args
        if isinstance(a, Constant) and isinstance(b, Constant):
            return int(a.value) * int(b.value)
    return None


def trace_allocation_sites(value: Value) -> Optional[Set[Call]]:
    """All allocation calls ``value`` may point into, or None if unknown.

    Follows gep bases, phi/select merges, and ptr<->int round trips.
    Loads and arguments are opaque: return None (cannot elide safely).
    """
    sites: Set[Call] = set()
    seen: Set[int] = set()
    work: List[Value] = [value]
    while work:
        v = work.pop()
        if id(v) in seen:
            continue
        seen.add(id(v))
        if isinstance(v, Call):
            if v.callee in HEAP_ALLOC_FUNCTIONS or v.callee == PINNED_ALLOC:
                sites.add(v)
                continue
            return None  # pointer from an arbitrary call
        if isinstance(v, Gep):
            work.append(v.base)
            continue
        if isinstance(v, Phi):
            work.extend(val for val, _ in v.incoming)
            continue
        if isinstance(v, Select):
            work.extend(v.operands[1:])
            continue
        if isinstance(v, (PtrToInt, IntToPtr)):
            work.append(v.operands[0])
            continue
        if isinstance(v, BinOp):
            work.extend(v.operands)
            continue
        if isinstance(v, Constant):
            continue
        if isinstance(v, (Load, Argument)):
            return None
        return None
    return sites if sites else None


class HeapPruningPass(Pass):
    """Pin hot allocation sites local; elide their guards."""

    name = "heap-pruning"

    def __init__(self, pin_budget_bytes: int) -> None:
        if pin_budget_bytes < 0:
            raise ValueError("pin budget must be >= 0")
        self.pin_budget_bytes = pin_budget_bytes

    def run(self, module: Module, ctx: PassContext) -> None:
        if self.pin_budget_bytes == 0:
            return
        sites = self._collect_sites(module, ctx)
        pinned = self._choose_pins(sites, ctx)
        if not pinned:
            return
        pinned_calls = {s.call for s in pinned}
        for site in pinned:
            site.call.callee = PINNED_ALLOC
            site.call.metadata[PINNED_MD] = True
            ctx.bump(f"{self.name}.sites_pinned")
        self._elide_guards(module, pinned_calls, ctx)

    # -- scoring --------------------------------------------------------

    def _collect_sites(
        self, module: Module, ctx: PassContext
    ) -> List[AllocationSite]:
        sites: Dict[int, AllocationSite] = {}
        for func in module.defined_functions():
            for inst in func.instructions():
                if isinstance(inst, Call):
                    size = _static_alloc_size(inst)
                    if size is not None:
                        sites[id(inst)] = AllocationSite(inst, func, size)
        # Attribute guarded-access frequency to sites.
        profile = ctx.profile
        for func in module.defined_functions():
            for inst in func.instructions():
                if not isinstance(inst, (Load, Store)):
                    continue
                if not inst.metadata.get(GUARD_MD):
                    continue
                traced = trace_allocation_sites(self._pointer_of(inst))
                if traced is None:
                    continue
                weight = 1.0
                if profile is not None and inst.parent is not None:
                    weight = float(
                        max(profile.count(func.name, inst.parent.name), 1)
                    )
                for call in traced:
                    site = sites.get(id(call))
                    if site is not None:
                        site.dynamic_accesses += weight / len(traced)
        return list(sites.values())

    @staticmethod
    def _pointer_of(inst: Instruction) -> Value:
        if isinstance(inst, Load):
            return inst.pointer
        assert isinstance(inst, Store)
        return inst.pointer

    def _choose_pins(
        self, sites: List[AllocationSite], ctx: PassContext
    ) -> List[AllocationSite]:
        hot = sorted(
            (s for s in sites if s.dynamic_accesses > 0),
            key=lambda s: s.heat,
            reverse=True,
        )
        chosen: List[AllocationSite] = []
        budget = self.pin_budget_bytes
        for site in hot:
            if site.size_bytes <= budget:
                chosen.append(site)
                budget -= site.size_bytes
            else:
                ctx.bump(f"{self.name}.sites_over_budget")
        return chosen

    # -- guard elision --------------------------------------------------

    def _elide_guards(
        self, module: Module, pinned_calls: Set[Call], ctx: PassContext
    ) -> None:
        for func in module.defined_functions():
            for inst in func.instructions():
                if not isinstance(inst, (Load, Store)):
                    continue
                if not inst.metadata.get(GUARD_MD):
                    continue
                traced = trace_allocation_sites(self._pointer_of(inst))
                if traced is None:
                    continue
                if traced <= pinned_calls:
                    inst.metadata.pop(GUARD_MD, None)
                    inst.metadata[ELIDED_MD] = True
                    ctx.bump(f"{self.name}.guards_elided")
