"""Per-allocation-site object-size recommendation (§3.2 future work).

With :class:`repro.trackfm.multipool.MultiPoolRuntime` providing
multiple size classes, the remaining question is *which class each
allocation should use*.  The evaluation's own findings are the policy:

* allocations reached by **sequential, induction-variable-strided**
  accesses (the chunking candidates) want the largest class — spatial
  locality amortizes the transfer (Fig. 10);
* allocations reached only by **irregular** accesses want the smallest
  class — anything bigger is I/O amplification (Fig. 9);
* mixed or unknown sites take the middle class.

The analysis reuses the guard-candidate marks, the chunk plans, and the
heap-pruning module's pointer-to-site tracing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.compiler.chunk_analysis import ChunkAnalysisPass, ChunkPlan
from repro.compiler.guard_analysis import GUARD_MD, GuardAnalysisPass
from repro.compiler.heap_pruning import trace_allocation_sites
from repro.compiler.pass_manager import PassContext
from repro.compiler.pipeline import ChunkingPolicy, CompilerConfig
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.trackfm.multipool import DEFAULT_CLASSES


def recommend_object_sizes(
    module: Module,
    classes: Sequence[int] = DEFAULT_CLASSES,
    profile=None,
) -> Dict[str, int]:
    """Map allocation-site names to recommended object sizes.

    Runs guard and chunk analysis on (a copy-free view of) the module
    and classifies each statically-identifiable allocation site.  Sites
    are keyed by the allocation call's SSA name.
    """
    small, mid, large = classes[0], classes[len(classes) // 2], classes[-1]
    ctx = PassContext(
        config=CompilerConfig(object_size=large, chunking=ChunkingPolicy.COST_MODEL),
        profile=profile,
    )
    GuardAnalysisPass().run(module, ctx)
    ChunkAnalysisPass().run(module, ctx)
    plans: List[ChunkPlan] = ctx.results.get("chunk_plans", [])

    sequential_sites: Set[int] = set()
    for plan in plans:
        if not plan.apply:
            continue
        for cand in plan.candidates:
            access = cand.access
            assert isinstance(access, (Load, Store))
            sites = trace_allocation_sites(access.pointer)
            if sites:
                sequential_sites.update(id(s) for s in sites)

    irregular_sites: Set[int] = set()
    for func in module.defined_functions():
        for inst in func.instructions():
            if not isinstance(inst, (Load, Store)):
                continue
            if not (
                inst.metadata.get(GUARD_MD) or inst.metadata.get("tfm.chunked")
            ):
                continue
            sites = trace_allocation_sites(inst.pointer)
            if not sites:
                continue
            chunked_here = inst.metadata.get("tfm.chunked") or any(
                cand.access is inst
                for plan in plans
                if plan.apply
                for cand in plan.candidates
            )
            if not chunked_here:
                irregular_sites.update(id(s) for s in sites)

    out: Dict[str, int] = {}
    for func in module.defined_functions():
        for inst in func.instructions():
            if not isinstance(inst, Call):
                continue
            if inst.callee not in ("malloc", "calloc", "tfm_malloc", "tfm_calloc"):
                continue
            if not inst.name:
                continue
            seq = id(inst) in sequential_sites
            irr = id(inst) in irregular_sites
            if seq and not irr:
                out[inst.name] = large
            elif irr and not seq:
                out[inst.name] = small
            else:
                out[inst.name] = mid
    return out
