"""Guard-check analysis.

§3.1: "TrackFM searches for all LLVM IR-level load and store
instructions that correspond to heap allocations (returned by malloc)
and marks these instructions as eligible for guard transformation.  The
pass ignores accesses to stack and global objects by leveraging
NOELLE's program dependence graph abstraction."

We use the provenance analysis (:mod:`repro.analysis.provenance`):
accesses whose pointer *may* be heap (or is unknown) are marked with
``tfm.guard`` metadata; provably stack/global accesses are skipped.
"""

from __future__ import annotations

from typing import List

from repro.analysis.provenance import ProvenanceAnalysis
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.instructions import Instruction, Load, Store
from repro.ir.module import Module

GUARD_MD = "tfm.guard"
SKIPPED_MD = "tfm.local_only"


class GuardAnalysisPass(Pass):
    """Mark heap-may loads/stores as guard candidates."""

    name = "guard-analysis"

    def run(self, module: Module, ctx: PassContext) -> None:
        candidates: List[Instruction] = []
        for func in module.defined_functions():
            prov = ProvenanceAnalysis(func)
            for inst in func.instructions():
                if not isinstance(inst, (Load, Store)):
                    continue
                if prov.must_guard(inst):
                    inst.metadata[GUARD_MD] = True
                    candidates.append(inst)
                    ctx.bump(f"{self.name}.candidates")
                else:
                    inst.metadata[SKIPPED_MD] = True
                    ctx.bump(f"{self.name}.skipped")
        ctx.results["guard_candidates"] = candidates
