"""Computation offload / near-data processing (§5 extension).

The paper: "Fetching remote data just to perform trivial computations
is unwise.  AIFM overcomes this by allowing library developers to
manually offload such lightweight computations onto the remote node ...
We believe TrackFM could employ static analysis techniques ... to
achieve the same goal."

This pass is that static analysis plus the transform.  It recognizes
*offloadable reduction loops*:

* a counted loop (``i = 0; i < n; i++``) whose bound is loop-invariant,
* whose body performs exactly one guarded load, strided by the
  induction variable off a loop-invariant base,
* folded into an accumulator with one associative/commutative op
  (add/xor/and/or), with no stores, no other calls, no other escapes,

and — when the scanned footprint is big enough that fetching it would
dwarf the computation — replaces the whole loop with one runtime call::

    %res = call i64 @tfm_offload_reduce(base, n, elem, op, init)

The remote node scans its own DRAM and returns a scalar: two small
messages instead of ``n * elem`` bytes of fetch traffic.  Locally-dirty
objects in the range are flushed first (the runtime charges their
writeback), so the remote computes over current data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.analysis.induction import InductionAnalysis, InductionVariable
from repro.analysis.loops import Loop, find_loops
from repro.compiler.guard_analysis import GUARD_MD
from repro.compiler.pass_manager import Pass, PassContext
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BinOp,
    Br,
    Call,
    CondBr,
    Gep,
    ICmp,
    Instruction,
    Load,
    Phi,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import I64
from repro.ir.values import Constant, Value

OFFLOAD_REDUCE = "tfm_offload_reduce"

#: Reduction opcode encoding shared with the runtime bridge.
REDUCE_OPS: Dict[str, int] = {"add": 0, "xor": 1, "and": 2, "or": 3}


@dataclass
class OffloadCandidate:
    """One reduction loop eligible for remote execution."""

    loop: Loop
    iv: InductionVariable
    acc: Phi
    acc_init: Value
    load: Load
    base: Value
    elem_size: int
    op: str
    bound: Value
    exit_block: BasicBlock
    preheader: BasicBlock

    def footprint_bytes(self, assumed_trip: int) -> int:
        trip = self.iv.trip_count
        if trip is None and isinstance(self.bound, Constant):
            trip = int(self.bound.value)
        if trip is None:
            trip = assumed_trip
        return max(trip, 0) * self.elem_size


def _loop_invariant(value: Value, loop: Loop) -> bool:
    if isinstance(value, Instruction):
        return value.parent not in loop.blocks
    return True


def find_offload_candidates(func: Function) -> List[OffloadCandidate]:
    """Match the offloadable-reduction shape in every loop of ``func``."""
    loops = find_loops(func)
    if not len(loops):
        return []
    cfg = CFG(func)
    ivs = InductionAnalysis(func, loops)
    out: List[OffloadCandidate] = []
    for loop in loops:
        cand = _match_loop(func, loop, cfg, ivs)
        if cand is not None:
            out.append(cand)
    return out


def _match_loop(
    func: Function, loop: Loop, cfg: CFG, ivs: InductionAnalysis
) -> Optional[OffloadCandidate]:
    if loop.children:
        return None  # innermost only
    iv = ivs.governing_iv(loop)
    if iv is None or iv.is_pointer or iv.step != 1:
        return None
    if not (isinstance(iv.start, Constant) and iv.start.value == 0):
        return None
    header = loop.header
    phis = header.phis()
    if len(phis) != 2:
        return None
    acc = next((p for p in phis if p is not iv.phi), None)
    if acc is None or not acc.type.is_int():
        return None

    # Exactly one exit edge, from the header.
    exits = loop.exit_edges(cfg)
    if len(exits) != 1 or exits[0][0] is not header:
        return None
    exit_block = exits[0][1]
    preheader = loop.preheader(cfg)
    if preheader is None:
        return None

    # The exit compare's bound must be loop-invariant.
    term = header.terminator
    if not isinstance(term, CondBr) or not isinstance(term.condition, ICmp):
        return None
    cmp_inst = term.condition
    lhs, rhs = cmp_inst.operands
    bound = rhs if (lhs is iv.phi or lhs is iv.update) else lhs
    if not _loop_invariant(bound, loop):
        return None

    # Accumulator recurrence: acc2 = op(acc, loaded) with allowed op.
    acc_update: Optional[Value] = None
    acc_init: Optional[Value] = None
    for value, pred in acc.incoming:
        if pred in loop.blocks:
            acc_update = value
        else:
            acc_init = value
    if not isinstance(acc_update, BinOp) or acc_update.opcode not in REDUCE_OPS:
        return None
    a, b = acc_update.operands
    loaded = b if a is acc else a if b is acc else None
    if not isinstance(loaded, Load):
        return None
    ptr = loaded.pointer
    if not isinstance(ptr, Gep):
        return None
    if ptr.index is not iv.phi or not _loop_invariant(ptr.base, loop):
        return None
    if loaded.type.size_bytes() != ptr.elem_size:
        return None  # partial-element loads complicate the remote scan
    if not loaded.metadata.get(GUARD_MD):
        return None  # only remotable data benefits

    # Body purity: no stores, no calls, no other loads.
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, Store):
                return None
            if isinstance(inst, Call):
                return None
            if isinstance(inst, Load) and inst is not loaded:
                return None

    # The accumulator must not be used inside the loop except by its
    # own update (otherwise partial sums escape).
    for block in loop.blocks:
        for inst in block.instructions:
            if inst is acc_update or inst is acc:
                continue
            if any(op is acc for op in inst.operands):
                return None

    assert acc_init is not None
    return OffloadCandidate(
        loop=loop,
        iv=iv,
        acc=acc,
        acc_init=acc_init,
        load=loaded,
        base=ptr.base,
        elem_size=ptr.elem_size,
        op=acc_update.opcode,
        bound=bound,
        exit_block=exit_block,
        preheader=preheader,
    )


class OffloadPass(Pass):
    """Replace big remote reduction loops with ``tfm_offload_reduce``."""

    name = "offload"

    def run(self, module: Module, ctx: PassContext) -> None:
        config = ctx.config
        threshold = getattr(config, "offload_threshold_bytes", 64 * 1024)
        for func in module.defined_functions():
            # Re-analyze after each rewrite: block lists change.
            changed = True
            while changed:
                changed = False
                for cand in find_offload_candidates(func):
                    if cand.footprint_bytes(config.assumed_trip_count) < threshold:
                        ctx.bump(f"{self.name}.below_threshold")
                        continue
                    self._rewrite(func, cand, ctx)
                    changed = True
                    break

    def _rewrite(
        self, func: Function, cand: OffloadCandidate, ctx: PassContext
    ) -> None:
        pre = cand.preheader
        term = pre.terminator
        assert term is not None
        call = Call(
            I64,
            OFFLOAD_REDUCE,
            [
                cand.base,
                cand.bound,
                Constant(I64, cand.elem_size),
                Constant(I64, REDUCE_OPS[cand.op]),
                cand.acc_init,
            ],
        )
        call.name = func.unique_name("offload")
        pre.insert_before(term, call)

        # Bypass the loop: preheader branches straight to the exit.
        header = cand.loop.header
        if isinstance(term, Br):
            term.target = cand.exit_block
        elif isinstance(term, CondBr):
            if term.if_true is header:
                term.if_true = cand.exit_block
            if term.if_false is header:
                term.if_false = cand.exit_block
        # Exit-block phis that received values from the header now
        # receive them from the preheader.
        for phi in cand.exit_block.phis():
            phi.incoming = [
                (v, pre if blk is header else blk) for v, blk in phi.incoming
            ]

        # The loop's results flow from the call now.
        func.replace_all_uses(cand.acc, call)
        func.replace_all_uses(cand.iv.phi, cand.bound)

        # Drop the dead loop blocks entirely.
        for block in list(cand.loop.blocks):
            func.blocks.remove(block)
        ctx.bump(f"{self.name}.loops_offloaded")
