"""A byte-accurate interpreter for :mod:`repro.ir`.

The interpreter plays the role of the CPU: it executes IR instructions
against a sparse :class:`AddressSpace`, resolves calls against the
module's functions, a builtin libc (malloc/free/memcpy/...), and any
*intrinsics* a far-memory runtime registers (``tfm_*`` guards and
allocation entry points).  Loads and stores through non-canonical
addresses that were never mapped raise :class:`SegmentationFault`, just
as the hardware would general-protection-fault — this is what makes the
guard transformation *observable*: untransformed programs crash on
TrackFM pointers, transformed ones run.

Two execution engines share one semantics:

* the **decoded** engine (default) runs :mod:`repro.sim.decode`'s flat,
  slot-indexed op records — operands are list indices, branch targets
  are block indices, callees resolve through a per-interpreter cache —
  and is several times faster;
* the **legacy** engine walks the IR objects directly, one
  ``isinstance`` ladder per dynamic instruction.  It is kept as the
  executable specification: the decoded engine must match it value for
  value, step for step, metric for metric (``tests/test_decode_cache.py``
  enforces this across the fuzzer's program shapes).

Select with ``Interpreter(module, engine="legacy")`` or the
``REPRO_INTERP_ENGINE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import InterpError, SegmentationFault
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import Argument, Constant, UndefValue, Value
from repro.sim.memory import AddressSpace

#: Address-space layout (canonical ranges).
STACK_BASE = 0x1000_0000
GLOBAL_BASE = 0x2000_0000
LIBC_HEAP_BASE = 0x4000_0000

_U64 = (1 << 64) - 1


def _wrap(value: int, bits: int) -> int:
    """Wrap to two's complement at ``bits`` width."""
    mask = (1 << bits) - 1
    value &= mask
    if bits > 1 and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


@dataclass
class InterpResult:
    """Outcome of one top-level run."""

    value: object
    steps: int
    output: List[str] = field(default_factory=list)


class _Frame:
    """One activation record."""

    __slots__ = ("func", "env", "block", "prev_block", "allocas")

    def __init__(self, func: Function) -> None:
        self.func = func
        self.env: Dict[Value, object] = {}
        self.block: BasicBlock = func.entry
        self.prev_block: Optional[BasicBlock] = None
        self.allocas: List[int] = []


IntrinsicFn = Callable[["Interpreter", List[object]], object]


class Interpreter:
    """Executes one module; reusable across multiple ``run`` calls."""

    def __init__(
        self,
        module: Module,
        intrinsics: Optional[Dict[str, IntrinsicFn]] = None,
        block_hook: Optional[Callable[[Function, str], None]] = None,
        max_steps: int = 50_000_000,
        engine: Optional[str] = None,
    ) -> None:
        self.module = module
        self.memory = AddressSpace()
        self.intrinsics: Dict[str, IntrinsicFn] = dict(intrinsics or {})
        self.block_hook = block_hook
        self.max_steps = max_steps
        if engine is None:
            engine = os.environ.get("REPRO_INTERP_ENGINE", "decoded")
        if engine not in ("decoded", "legacy"):
            raise InterpError(f"unknown interpreter engine {engine!r}")
        self.engine = engine
        self.steps = 0
        self.output: List[str] = []
        self._stack_top = STACK_BASE
        self._heap_top = LIBC_HEAP_BASE
        self._heap_sizes: Dict[int, int] = {}
        self._globals: Dict[str, int] = {}
        #: Decoded-engine state: the decoded module this interpreter last
        #: ran, and its callee-id -> resolved-callable cache (reset when
        #: the decode cache turns over or an intrinsic is registered).
        self._dmod = None
        self._callee_cache: List[Optional[tuple]] = []
        self._map_globals()

    # -- setup ----------------------------------------------------------

    def _map_globals(self) -> None:
        addr = GLOBAL_BASE
        for g in self.module.globals():
            self.memory.map_region(addr, g.size_bytes, label=f"global:{g.name}")
            self._globals[g.name] = addr
            addr += (g.size_bytes + 63) // 64 * 64

    def global_addr(self, name: str) -> int:
        addr = self._globals.get(name)
        if addr is None:
            raise InterpError(f"no global @{name}")
        return addr

    def register_intrinsic(self, name: str, fn: IntrinsicFn) -> None:
        self.intrinsics[name] = fn
        # A name previously resolved as a builtin (or left unresolved)
        # may now bind to this intrinsic: drop the resolution cache.
        self._callee_cache = [None] * len(self._callee_cache)

    # -- builtin libc heap --------------------------------------------------

    def libc_malloc(self, size: int) -> int:
        """The *default* (canonical) heap; replaced by tfm_malloc post-pass."""
        if size <= 0:
            size = 1
        addr = self._heap_top
        self.memory.map_region(addr, size, label="heap")
        self._heap_sizes[addr] = size
        self._heap_top += (size + 15) // 16 * 16
        return addr

    def libc_free(self, addr: int) -> None:
        if addr == 0:
            return
        if addr not in self._heap_sizes:
            raise InterpError(f"free of non-heap address {addr:#x}")
        del self._heap_sizes[addr]
        self.memory.unmap(addr)

    def libc_realloc(self, addr: int, size: int) -> int:
        if addr == 0:
            return self.libc_malloc(size)
        old_size = self._heap_sizes.get(addr)
        if old_size is None:
            raise InterpError(f"realloc of non-heap address {addr:#x}")
        new = self.libc_malloc(size)
        data = self.memory.read_bytes(addr, min(old_size, size))
        self.memory.write_bytes(new, data)
        self.libc_free(addr)
        return new

    # -- execution ----------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence[object] = ()) -> InterpResult:
        """Execute ``entry(args)`` to completion."""
        func = self.module.get_function(entry)
        if self.engine == "legacy" or func.is_declaration:
            value = self._call_function(func, list(args))
        else:
            dmod = self._decoded()
            value = self._call_decoded(dmod.functions[func.name], list(args))
        return InterpResult(value=value, steps=self.steps, output=list(self.output))

    # -- decoded engine -----------------------------------------------------

    def _decoded(self):
        """The module's decoded form; one cache check per ``run``."""
        from repro.sim.decode import decode_module

        dmod = decode_module(self.module)
        if dmod is not self._dmod:
            self._dmod = dmod
            self._callee_cache = [None] * len(dmod.callees)
        return dmod

    def _resolve_callee(self, cid: int) -> tuple:
        """Resolve a callee id once; cached until intrinsics change.

        The cached entry is ``(kind, payload)``: 0 = internal decoded
        function, 1 = registered intrinsic, 2 = builtin libc wrapper,
        3 = a ``global_addr.*`` constant.
        """
        from repro.sim.decode import CALLEE_GLOBAL, CALLEE_INTERNAL

        tag, name = self._dmod.callee_static[cid]
        if tag == CALLEE_GLOBAL:
            entry = (3, self.global_addr(name))
        elif tag == CALLEE_INTERNAL:
            entry = (0, self._dmod.functions[name])
        else:
            fn = self.intrinsics.get(name)
            if fn is not None:
                entry = (1, fn)
            else:
                builtin = _BUILTIN_WRAPPERS.get(name)
                if builtin is None:
                    raise InterpError(f"call to unresolved function @{name}")
                entry = (2, builtin(self))
        self._callee_cache[cid] = entry
        return entry

    def _call_decoded(self, dfunc, args: List[object]) -> object:
        """Run one decoded activation frame (the hot loop).

        Mirrors ``_run_frame``/``_execute`` semantics exactly, including
        step accounting: one step per executed non-phi instruction plus
        one per phi evaluated on a taken edge.  ``self.steps`` is kept in
        a local and synced around calls and at returns.
        """
        from repro.sim.decode import (
            OP_ADD64, OP_ALLOCA, OP_AND64, OP_ASHR, OP_BINW, OP_BR, OP_CALL,
            OP_CONDBR, OP_FADD, OP_FCMP, OP_FDIV, OP_FMUL, OP_FPTOSI, OP_FSUB,
            OP_GEP, OP_ICMP_EQ, OP_ICMP_NE, OP_ICMP_SGE, OP_ICMP_SGT,
            OP_ICMP_SLE, OP_ICMP_SLT, OP_ICMP_U, OP_INTTOPTR, OP_LOAD,
            OP_LSHR, OP_MUL64, OP_OR64, OP_PTRTOINT, OP_RAISE, OP_RET,
            OP_SDIV, OP_SELECT, OP_SHL, OP_SITOFP, OP_SREM, OP_STORE,
            OP_SUB64, OP_WRAP, OP_XOR64, OP_ZEXT,
        )

        if len(args) != dfunc.nargs:
            raise InterpError(
                f"@{dfunc.name} expects {dfunc.nargs} args, got {len(args)}"
            )
        regs = dfunc.template[:]
        if args:
            regs[: len(args)] = args
        func = dfunc.func
        blocks = dfunc.blocks
        names = dfunc.names
        hook = self.block_hook
        memory = self.memory
        read_value = memory.read_value
        write_value = memory.write_value
        callees = self._callee_cache
        max_steps = self.max_steps
        steps = self.steps
        allocas: List[int] = []
        M64 = _U64
        S63 = 1 << 63
        P64 = 1 << 64
        bi = dfunc.start
        try:
            while True:
                if hook is not None:
                    hook(func, names[bi])
                for op in blocks[bi]:
                    steps += 1
                    if steps > max_steps:
                        self.steps = steps
                        raise InterpError(f"exceeded max_steps={max_steps}")
                    tag = op[0]
                    if tag == OP_ADD64:
                        v = (regs[op[2]] + regs[op[3]]) & M64
                        regs[op[1]] = v - P64 if v >= S63 else v
                    elif tag == OP_GEP:
                        regs[op[1]] = (regs[op[2]] + regs[op[3]] * op[4]) & M64
                    elif tag == OP_LOAD:
                        regs[op[1]] = read_value(regs[op[2]], op[3])
                    elif tag == OP_CALL:
                        ce = callees[op[2]]
                        if ce is None:
                            ce = self._resolve_callee(op[2])
                        kind = ce[0]
                        if kind == 3:
                            result = ce[1]
                        else:
                            call_args = [regs[s] for s in op[3]]
                            self.steps = steps
                            if kind == 1:
                                result = ce[1](self, call_args)
                            elif kind == 0:
                                result = self._call_decoded(ce[1], call_args)
                            else:
                                result = ce[1](call_args)
                            steps = self.steps
                        if op[1] is not None:
                            regs[op[1]] = result
                    elif tag == OP_ICMP_SLT:
                        regs[op[1]] = 1 if regs[op[2]] < regs[op[3]] else 0
                    elif tag == OP_CONDBR:
                        if regs[op[1]]:
                            bi = op[2]
                            copies = op[3]
                            nphi = op[4]
                        else:
                            bi = op[5]
                            copies = op[6]
                            nphi = op[7]
                        if copies:
                            if nphi == 1:
                                d, s = copies[0]
                                regs[d] = regs[s]
                            else:
                                vals = [regs[s] for _, s in copies]
                                for (d, _), v in zip(copies, vals):
                                    regs[d] = v
                            steps += nphi
                        break
                    elif tag == OP_STORE:
                        write_value(regs[op[3]], op[2], regs[op[1]])
                    elif tag == OP_BR:
                        copies = op[2]
                        if copies:
                            nphi = op[3]
                            if nphi == 1:
                                d, s = copies[0]
                                regs[d] = regs[s]
                            else:
                                vals = [regs[s] for _, s in copies]
                                for (d, _), v in zip(copies, vals):
                                    regs[d] = v
                            steps += nphi
                        bi = op[1]
                        break
                    elif tag == OP_RET:
                        self.steps = steps
                        s = op[1]
                        return regs[s] if s is not None else None
                    elif tag == OP_MUL64:
                        v = (regs[op[2]] * regs[op[3]]) & M64
                        regs[op[1]] = v - P64 if v >= S63 else v
                    elif tag == OP_SUB64:
                        v = (regs[op[2]] - regs[op[3]]) & M64
                        regs[op[1]] = v - P64 if v >= S63 else v
                    elif tag == OP_AND64:
                        v = (regs[op[2]] & regs[op[3]]) & M64
                        regs[op[1]] = v - P64 if v >= S63 else v
                    elif tag == OP_OR64:
                        v = (regs[op[2]] | regs[op[3]]) & M64
                        regs[op[1]] = v - P64 if v >= S63 else v
                    elif tag == OP_XOR64:
                        v = (regs[op[2]] ^ regs[op[3]]) & M64
                        regs[op[1]] = v - P64 if v >= S63 else v
                    elif tag == OP_ICMP_EQ:
                        regs[op[1]] = 1 if regs[op[2]] == regs[op[3]] else 0
                    elif tag == OP_ICMP_NE:
                        regs[op[1]] = 1 if regs[op[2]] != regs[op[3]] else 0
                    elif tag == OP_ICMP_SLE:
                        regs[op[1]] = 1 if regs[op[2]] <= regs[op[3]] else 0
                    elif tag == OP_ICMP_SGT:
                        regs[op[1]] = 1 if regs[op[2]] > regs[op[3]] else 0
                    elif tag == OP_ICMP_SGE:
                        regs[op[1]] = 1 if regs[op[2]] >= regs[op[3]] else 0
                    elif tag == OP_ICMP_U:
                        regs[op[1]] = (
                            1 if op[4](int(regs[op[2]]) & M64, int(regs[op[3]]) & M64)
                            else 0
                        )
                    elif tag == OP_SELECT:
                        regs[op[1]] = regs[op[3]] if regs[op[2]] else regs[op[4]]
                    elif tag == OP_ALLOCA:
                        addr = self._stack_top
                        memory.map_region(addr, op[2], label="stack")
                        allocas.append(addr)
                        self._stack_top += (op[2] + 15) // 16 * 16
                        regs[op[1]] = addr
                    elif tag == OP_BINW:
                        regs[op[1]] = _wrap(
                            op[5](int(regs[op[2]]), int(regs[op[3]])), op[4]
                        )
                    elif tag == OP_SDIV:
                        ia, ib = int(regs[op[2]]), int(regs[op[3]])
                        if ib == 0:
                            self.steps = steps
                            raise InterpError("sdiv by zero")
                        q = abs(ia) // abs(ib)
                        regs[op[1]] = _wrap(-q if (ia < 0) != (ib < 0) else q, op[4])
                    elif tag == OP_SREM:
                        ia, ib = int(regs[op[2]]), int(regs[op[3]])
                        if ib == 0:
                            self.steps = steps
                            raise InterpError("srem by zero")
                        q = abs(ia) // abs(ib)
                        q = -q if (ia < 0) != (ib < 0) else q
                        regs[op[1]] = _wrap(ia - q * ib, op[4])
                    elif tag == OP_SHL:
                        bits = op[4]
                        regs[op[1]] = _wrap(
                            int(regs[op[2]]) << (int(regs[op[3]]) % bits), bits
                        )
                    elif tag == OP_LSHR:
                        bits = op[4]
                        regs[op[1]] = _wrap(
                            _unsigned(int(regs[op[2]]), bits)
                            >> (int(regs[op[3]]) % bits),
                            bits,
                        )
                    elif tag == OP_ASHR:
                        bits = op[4]
                        regs[op[1]] = _wrap(
                            int(regs[op[2]]) >> (int(regs[op[3]]) % bits), bits
                        )
                    elif tag == OP_FADD:
                        regs[op[1]] = float(regs[op[2]]) + float(regs[op[3]])
                    elif tag == OP_FSUB:
                        regs[op[1]] = float(regs[op[2]]) - float(regs[op[3]])
                    elif tag == OP_FMUL:
                        regs[op[1]] = float(regs[op[2]]) * float(regs[op[3]])
                    elif tag == OP_FDIV:
                        fa, fb = float(regs[op[2]]), float(regs[op[3]])
                        if fb == 0.0:
                            regs[op[1]] = (
                                float("inf") if fa > 0
                                else float("-inf") if fa < 0
                                else float("nan")
                            )
                        else:
                            regs[op[1]] = fa / fb
                    elif tag == OP_FCMP:
                        regs[op[1]] = (
                            1 if op[4](float(regs[op[2]]), float(regs[op[3]])) else 0
                        )
                    elif tag == OP_PTRTOINT:
                        regs[op[1]] = _wrap(int(regs[op[2]]), 64)
                    elif tag == OP_INTTOPTR:
                        regs[op[1]] = int(regs[op[2]]) & M64
                    elif tag == OP_WRAP:
                        regs[op[1]] = _wrap(int(regs[op[2]]), op[3])
                    elif tag == OP_ZEXT:
                        regs[op[1]] = _wrap(int(regs[op[2]]) & op[3], op[4])
                    elif tag == OP_SITOFP:
                        regs[op[1]] = float(int(regs[op[2]]))
                    elif tag == OP_FPTOSI:
                        regs[op[1]] = _wrap(int(float(regs[op[2]])), 64)
                    elif tag == OP_RAISE:
                        self.steps = steps
                        raise InterpError(op[1])
                    else:  # pragma: no cover - decoder emits only known tags
                        self.steps = steps
                        raise InterpError(f"bad decoded op tag {tag}")
        finally:
            for addr in reversed(allocas):
                memory.unmap(addr)

    def _call_function(self, func: Function, args: List[object]) -> object:
        if func.is_declaration:
            return self._call_external(func.name, args)
        if len(args) != len(func.args):
            raise InterpError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}"
            )
        frame = _Frame(func)
        for formal, actual in zip(func.args, args):
            frame.env[formal] = actual
        try:
            return self._run_frame(frame)
        finally:
            for addr in reversed(frame.allocas):
                self.memory.unmap(addr)

    def _run_frame(self, frame: _Frame) -> object:
        while True:
            if self.block_hook is not None:
                self.block_hook(frame.func, frame.block.name)
            result = self._run_block(frame)
            if result is not _CONTINUE:
                return result

    def _run_block(self, frame: _Frame) -> object:
        # Phi nodes are evaluated simultaneously from the edge taken.
        block = frame.block
        phis = block.phis()
        if phis:
            if frame.prev_block is None:
                raise InterpError(f"phi in entry block %{block.name}")
            values = [
                self._value(frame, phi.incoming_for(frame.prev_block)) for phi in phis
            ]
            for phi, v in zip(phis, values):
                frame.env[phi] = v
            self.steps += len(phis)
        for inst in block.instructions[len(phis):]:
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpError(f"exceeded max_steps={self.max_steps}")
            outcome = self._execute(frame, inst)
            if outcome is _RETURN:
                return frame.env.get(_RETURN_SLOT)
            if outcome is _BRANCHED:
                return _CONTINUE
        raise InterpError(f"block %{block.name} fell through without terminator")

    # -- instruction dispatch ------------------------------------------------

    def _value(self, frame: _Frame, v: Value) -> object:
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, UndefValue):
            return 0
        if v in frame.env:
            return frame.env[v]
        raise InterpError(f"use of undefined value {v.short()} in @{frame.func.name}")

    def _execute(self, frame: _Frame, inst: Instruction) -> object:
        if isinstance(inst, BinOp):
            frame.env[inst] = self._binop(frame, inst)
            return None
        if isinstance(inst, Load):
            addr = self._value(frame, inst.pointer)
            frame.env[inst] = self.memory.read_value(int(addr), inst.type)
            return None
        if isinstance(inst, Store):
            addr = self._value(frame, inst.pointer)
            self.memory.write_value(int(addr), inst.value.type, self._value(frame, inst.value))
            return None
        if isinstance(inst, Gep):
            base = int(self._value(frame, inst.base))
            index = int(self._value(frame, inst.index))
            frame.env[inst] = (base + index * inst.elem_size) & _U64
            return None
        if isinstance(inst, ICmp):
            frame.env[inst] = self._icmp(frame, inst)
            return None
        if isinstance(inst, FCmp):
            frame.env[inst] = self._fcmp(frame, inst)
            return None
        if isinstance(inst, Br):
            frame.prev_block = frame.block
            frame.block = inst.target
            return _BRANCHED
        if isinstance(inst, CondBr):
            cond = self._value(frame, inst.condition)
            frame.prev_block = frame.block
            frame.block = inst.if_true if cond else inst.if_false
            return _BRANCHED
        if isinstance(inst, Ret):
            frame.env[_RETURN_SLOT] = (
                self._value(frame, inst.value) if inst.value is not None else None
            )
            return _RETURN
        if isinstance(inst, Call):
            frame.env[inst] = self._call(frame, inst)
            return None
        if isinstance(inst, Select):
            cond, a, b = (self._value(frame, op) for op in inst.operands)
            frame.env[inst] = a if cond else b
            return None
        if isinstance(inst, Alloca):
            addr = self._stack_top
            self.memory.map_region(addr, inst.size_bytes, label="stack")
            frame.allocas.append(addr)
            self._stack_top += (inst.size_bytes + 15) // 16 * 16
            frame.env[inst] = addr
            return None
        if isinstance(inst, PtrToInt):
            frame.env[inst] = _wrap(int(self._value(frame, inst.operands[0])), 64)
            return None
        if isinstance(inst, IntToPtr):
            frame.env[inst] = int(self._value(frame, inst.operands[0])) & _U64
            return None
        if isinstance(inst, Cast):
            frame.env[inst] = self._cast(frame, inst)
            return None
        if isinstance(inst, Phi):
            raise InterpError("phi reached dispatch (must be at block head)")
        raise InterpError(f"cannot execute {inst.render()}")

    def _binop(self, frame: _Frame, inst: BinOp) -> object:
        a = self._value(frame, inst.lhs)
        b = self._value(frame, inst.rhs)
        op = inst.opcode
        if op.startswith("f"):
            fa, fb = float(a), float(b)
            if op == "fadd":
                return fa + fb
            if op == "fsub":
                return fa - fb
            if op == "fmul":
                return fa * fb
            if op == "fdiv":
                if fb == 0.0:
                    return float("inf") if fa > 0 else float("-inf") if fa < 0 else float("nan")
                return fa / fb
        ia, ib = int(a), int(b)
        bits = inst.type.bits if isinstance(inst.type, IntType) else 64
        if op == "add":
            return _wrap(ia + ib, bits)
        if op == "sub":
            return _wrap(ia - ib, bits)
        if op == "mul":
            return _wrap(ia * ib, bits)
        if op == "sdiv":
            if ib == 0:
                raise InterpError("sdiv by zero")
            q = abs(ia) // abs(ib)
            return _wrap(-q if (ia < 0) != (ib < 0) else q, bits)
        if op == "srem":
            if ib == 0:
                raise InterpError("srem by zero")
            q = abs(ia) // abs(ib)
            q = -q if (ia < 0) != (ib < 0) else q
            return _wrap(ia - q * ib, bits)
        if op == "and":
            return _wrap(ia & ib, bits)
        if op == "or":
            return _wrap(ia | ib, bits)
        if op == "xor":
            return _wrap(ia ^ ib, bits)
        if op == "shl":
            return _wrap(ia << (ib % bits), bits)
        if op == "lshr":
            return _wrap(_unsigned(ia, bits) >> (ib % bits), bits)
        if op == "ashr":
            return _wrap(ia >> (ib % bits), bits)
        raise InterpError(f"unknown binop {op}")

    def _icmp(self, frame: _Frame, inst: ICmp) -> int:
        a = int(self._value(frame, inst.operands[0]))
        b = int(self._value(frame, inst.operands[1]))
        pred = inst.pred
        if pred.startswith("u"):
            a, b = _unsigned(a, 64), _unsigned(b, 64)
            pred = {"ult": "slt", "ule": "sle", "ugt": "sgt", "uge": "sge"}[pred]
        table = {
            "eq": a == b,
            "ne": a != b,
            "slt": a < b,
            "sle": a <= b,
            "sgt": a > b,
            "sge": a >= b,
        }
        return int(table[pred])

    def _fcmp(self, frame: _Frame, inst: FCmp) -> int:
        a = float(self._value(frame, inst.operands[0]))
        b = float(self._value(frame, inst.operands[1]))
        table = {
            "oeq": a == b,
            "one": a != b,
            "olt": a < b,
            "ole": a <= b,
            "ogt": a > b,
            "oge": a >= b,
        }
        return int(table[inst.pred])

    def _cast(self, frame: _Frame, inst: Cast) -> object:
        v = self._value(frame, inst.operands[0])
        if inst.opcode in ("trunc", "zext", "sext"):
            to_bits = inst.type.bits  # type: ignore[union-attr]
            iv = int(v)
            if inst.opcode == "zext":
                src_bits = inst.operands[0].type.bits  # type: ignore[union-attr]
                return _wrap(_unsigned(iv, src_bits), to_bits)
            return _wrap(iv, to_bits)
        if inst.opcode == "sitofp":
            return float(int(v))
        if inst.opcode == "fptosi":
            return _wrap(int(float(v)), 64)
        raise InterpError(f"unknown cast {inst.opcode}")

    # -- calls ----------------------------------------------------------

    def _call(self, frame: _Frame, inst: Call) -> object:
        args = [self._value(frame, a) for a in inst.args]
        name = inst.callee
        if name.startswith("global_addr."):
            return self.global_addr(name[len("global_addr."):])
        if self.module.has_function(name):
            target = self.module.get_function(name)
            if not target.is_declaration:
                return self._call_function(target, args)
        return self._call_external(name, args)

    def _call_external(self, name: str, args: List[object]) -> object:
        fn = self.intrinsics.get(name)
        if fn is not None:
            return fn(self, args)
        if name == "malloc":
            return self.libc_malloc(int(args[0]))
        if name == "calloc":
            return self.libc_malloc(int(args[0]) * int(args[1]))
        if name == "realloc":
            return self.libc_realloc(int(args[0]), int(args[1]))
        if name == "free":
            self.libc_free(int(args[0]))
            return None
        if name == "memset":
            dst, byte, n = (int(a) for a in args)
            self.memory.write_bytes(dst, bytes([byte & 0xFF]) * n)
            return dst
        if name == "memcpy":
            dst, src, n = (int(a) for a in args)
            self.memory.write_bytes(dst, self.memory.read_bytes(src, n))
            return dst
        if name == "print_i64":
            self.output.append(str(int(args[0])))
            return None
        if name == "print_f64":
            self.output.append(repr(float(args[0])))
            return None
        if name == "abort":
            raise InterpError("abort() called")
        raise InterpError(f"call to unresolved function @{name}")


def _abort(interp: "Interpreter") -> Callable[[List[object]], object]:
    def fn(args: List[object]) -> object:
        raise InterpError("abort() called")

    return fn


def _memset(interp: "Interpreter") -> Callable[[List[object]], object]:
    write_bytes = interp.memory.write_bytes

    def fn(args: List[object]) -> object:
        dst, byte, n = (int(a) for a in args)
        write_bytes(dst, bytes([byte & 0xFF]) * n)
        return dst

    return fn


def _memcpy(interp: "Interpreter") -> Callable[[List[object]], object]:
    memory = interp.memory

    def fn(args: List[object]) -> object:
        dst, src, n = (int(a) for a in args)
        memory.write_bytes(dst, memory.read_bytes(src, n))
        return dst

    return fn


#: Decoded-engine equivalents of :meth:`Interpreter._call_external`'s
#: builtin libc chain.  Each entry is a factory ``interp -> fn(args)`` so
#: the resolved closure binds its interpreter once, not per call.
_BUILTIN_WRAPPERS: Dict[str, Callable[["Interpreter"], Callable[[List[object]], object]]] = {
    "malloc": lambda i: lambda args: i.libc_malloc(int(args[0])),
    "calloc": lambda i: lambda args: i.libc_malloc(int(args[0]) * int(args[1])),
    "realloc": lambda i: lambda args: i.libc_realloc(int(args[0]), int(args[1])),
    "free": lambda i: lambda args: i.libc_free(int(args[0])),
    "memset": _memset,
    "memcpy": _memcpy,
    "print_i64": lambda i: lambda args: i.output.append(str(int(args[0]))),
    "print_f64": lambda i: lambda args: i.output.append(repr(float(args[0]))),
    "abort": _abort,
}


class _Sentinel:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug only
        return f"<{self.name}>"


_CONTINUE = _Sentinel("continue")
_BRANCHED = _Sentinel("branched")
_RETURN = _Sentinel("return")
_RETURN_SLOT = _Sentinel("return-slot")
