"""Metrics accumulated by the far-memory runtime simulators.

Everything the paper's figures plot comes from these counters: simulated
cycles (execution time), guard counts by kind (Fig. 14b, 16b), page
faults (Fig. 14b), and bytes moved over the network (Fig. 13b, 16c —
I/O amplification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.machine.costs import GuardKind


@dataclass
class Metrics:
    """Counter bundle; one per runtime instance."""

    #: Total simulated cycles charged.
    cycles: float = 0.0
    #: Memory accesses observed (loads + stores).
    accesses: int = 0
    #: Guard executions by kind (TrackFM runtimes).
    guards: Dict[GuardKind, int] = field(default_factory=dict)
    #: Page faults (Fastswap): minor = swap-cache hit, major = remote.
    minor_faults: int = 0
    major_faults: int = 0
    #: Objects/pages fetched from the remote node.
    remote_fetches: int = 0
    #: Bytes pulled from the remote node.
    bytes_fetched: int = 0
    #: Bytes written back (evacuations / page-outs).
    bytes_evacuated: int = 0
    #: Object evacuations / page reclaims performed.
    evictions: int = 0
    #: Prefetch requests issued and how many were useful.
    prefetches_issued: int = 0
    prefetches_useful: int = 0
    #: Resilience counters (fault injection, ``repro.net.faults``).
    #: Messages lost on the wire (drops + pause windows).
    drops: int = 0
    #: Loss-detection timeouts charged by the retry policy.
    timeouts: int = 0
    #: Retries granted by the retry policy.
    retries: int = 0
    #: Accesses served locally because the remote tier was unavailable.
    degraded_accesses: int = 0
    #: Dirty writebacks deferred because the remote tier was unavailable.
    deferred_writebacks: int = 0
    #: Integrity counters (checksum verification, ``repro.integrity``).
    #: Payloads that failed checksum verification on fetch.
    corruptions_detected: int = 0
    #: Corruptions repaired by bounded re-fetch / journal re-drive.
    corruptions_repaired: int = 0
    #: Objects quarantined after the repair budget was exhausted.
    quarantined_objects: int = 0
    #: Writebacks re-driven from the evacuation journal (repair + recovery).
    journal_replays: int = 0
    #: Adaptive-hybrid counters (``repro.hybrid`` path selector).
    #: Regions whose selected tier flipped at a rebalance epoch.
    tier_switches: int = 0
    #: Objects physically moved between tiers by those flips.
    objects_migrated: int = 0
    #: Replication counters (``repro.serve`` quorum paths).
    #: Secondary-replica write applications (beyond the coordinator's).
    replica_writes: int = 0
    #: Reads that consulted a read quorum of replicas.
    quorum_reads: int = 0
    #: Stale replicas healed inline by a divergent quorum read.
    read_repairs: int = 0
    #: Dead shards failed over (surviving replicas promoted).
    failovers: int = 0
    #: Stale replicas reconciled by the background anti-entropy sweep.
    stale_replicas_healed: int = 0

    def count_guard(self, kind: GuardKind, n: int = 1) -> None:
        self.guards[kind] = self.guards.get(kind, 0) + n

    def guard_count(self, kind: GuardKind) -> int:
        return self.guards.get(kind, 0)

    @property
    def total_guards(self) -> int:
        """Guards that executed guard code (excludes unguarded accesses)."""
        return sum(n for k, n in self.guards.items() if k is not GuardKind.NONE)

    @property
    def slow_path_guards(self) -> int:
        return self.guard_count(GuardKind.SLOW) + self.guard_count(GuardKind.LOCALITY)

    @property
    def total_faults(self) -> int:
        return self.minor_faults + self.major_faults

    @property
    def total_bytes_transferred(self) -> int:
        return self.bytes_fetched + self.bytes_evacuated

    def amplification(self, working_set_bytes: int) -> float:
        """Total data moved over the network / working-set size (Fig 13/16)."""
        if working_set_bytes <= 0:
            return 0.0
        return self.total_bytes_transferred / working_set_bytes

    def merge(self, other: "Metrics") -> None:
        """Fold ``other`` into this metrics bundle.

        Sparseness-preserving: a guard kind ``other`` holds at zero is
        *not* materialized here.  Aggregating per-shard metrics must not
        grow explicit zero entries, or ``as_dict`` (which emits every
        present guard key) would serialize differently from a fresh
        bundle — breaking the exact ``BENCH_*.json`` fingerprints.
        """
        self.cycles += other.cycles
        self.accesses += other.accesses
        for kind, n in other.guards.items():
            if n:
                self.count_guard(kind, n)
        self.minor_faults += other.minor_faults
        self.major_faults += other.major_faults
        self.remote_fetches += other.remote_fetches
        self.bytes_fetched += other.bytes_fetched
        self.bytes_evacuated += other.bytes_evacuated
        self.evictions += other.evictions
        self.prefetches_issued += other.prefetches_issued
        self.prefetches_useful += other.prefetches_useful
        self.drops += other.drops
        self.timeouts += other.timeouts
        self.retries += other.retries
        self.degraded_accesses += other.degraded_accesses
        self.deferred_writebacks += other.deferred_writebacks
        self.corruptions_detected += other.corruptions_detected
        self.corruptions_repaired += other.corruptions_repaired
        self.quarantined_objects += other.quarantined_objects
        self.journal_replays += other.journal_replays
        self.tier_switches += other.tier_switches
        self.objects_migrated += other.objects_migrated
        self.replica_writes += other.replica_writes
        self.quorum_reads += other.quorum_reads
        self.read_repairs += other.read_repairs
        self.failovers += other.failovers
        self.stale_replicas_healed += other.stale_replicas_healed

    def reset(self) -> None:
        self.cycles = 0.0
        self.accesses = 0
        self.guards.clear()
        self.minor_faults = 0
        self.major_faults = 0
        self.remote_fetches = 0
        self.bytes_fetched = 0
        self.bytes_evacuated = 0
        self.evictions = 0
        self.prefetches_issued = 0
        self.prefetches_useful = 0
        self.drops = 0
        self.timeouts = 0
        self.retries = 0
        self.degraded_accesses = 0
        self.deferred_writebacks = 0
        self.corruptions_detected = 0
        self.corruptions_repaired = 0
        self.quarantined_objects = 0
        self.journal_replays = 0
        self.tier_switches = 0
        self.objects_migrated = 0
        self.replica_writes = 0
        self.quorum_reads = 0
        self.read_repairs = 0
        self.failovers = 0
        self.stale_replicas_healed = 0

    def snapshot(self) -> "Metrics":
        """A copy of the current counters."""
        copy = Metrics(
            cycles=self.cycles,
            accesses=self.accesses,
            guards=dict(self.guards),
            minor_faults=self.minor_faults,
            major_faults=self.major_faults,
            remote_fetches=self.remote_fetches,
            bytes_fetched=self.bytes_fetched,
            bytes_evacuated=self.bytes_evacuated,
            evictions=self.evictions,
            prefetches_issued=self.prefetches_issued,
            prefetches_useful=self.prefetches_useful,
            drops=self.drops,
            timeouts=self.timeouts,
            retries=self.retries,
            degraded_accesses=self.degraded_accesses,
            deferred_writebacks=self.deferred_writebacks,
            corruptions_detected=self.corruptions_detected,
            corruptions_repaired=self.corruptions_repaired,
            quarantined_objects=self.quarantined_objects,
            journal_replays=self.journal_replays,
            tier_switches=self.tier_switches,
            objects_migrated=self.objects_migrated,
            replica_writes=self.replica_writes,
            quorum_reads=self.quorum_reads,
            read_repairs=self.read_repairs,
            failovers=self.failovers,
            stale_replicas_healed=self.stale_replicas_healed,
        )
        return copy

    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON-safe form, shared by benchmarks and traces.

        Guard counts are keyed by :class:`GuardKind` value strings and
        sorted, so equal metrics serialize identically.  Resilience
        counters are emitted *only when nonzero*: fault-free runs keep
        the exact serialization older baselines and goldens pinned.
        """
        out: Dict[str, object] = {
            "cycles": self.cycles,
            "accesses": self.accesses,
            "guards": {
                kind.value: n
                for kind, n in sorted(self.guards.items(), key=lambda kv: kv[0].value)
            },
            "minor_faults": self.minor_faults,
            "major_faults": self.major_faults,
            "remote_fetches": self.remote_fetches,
            "bytes_fetched": self.bytes_fetched,
            "bytes_evacuated": self.bytes_evacuated,
            "evictions": self.evictions,
            "prefetches_issued": self.prefetches_issued,
            "prefetches_useful": self.prefetches_useful,
        }
        for key in (
            "drops",
            "timeouts",
            "retries",
            "degraded_accesses",
            "deferred_writebacks",
            "corruptions_detected",
            "corruptions_repaired",
            "quarantined_objects",
            "journal_replays",
            "tier_switches",
            "objects_migrated",
            "replica_writes",
            "quorum_reads",
            "read_repairs",
            "failovers",
            "stale_replicas_healed",
        ):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Metrics":
        """Inverse of :meth:`as_dict` (lossless round-trip)."""
        m = cls(
            cycles=float(data.get("cycles", 0.0)),
            accesses=int(data.get("accesses", 0)),
            minor_faults=int(data.get("minor_faults", 0)),
            major_faults=int(data.get("major_faults", 0)),
            remote_fetches=int(data.get("remote_fetches", 0)),
            bytes_fetched=int(data.get("bytes_fetched", 0)),
            bytes_evacuated=int(data.get("bytes_evacuated", 0)),
            evictions=int(data.get("evictions", 0)),
            prefetches_issued=int(data.get("prefetches_issued", 0)),
            prefetches_useful=int(data.get("prefetches_useful", 0)),
            drops=int(data.get("drops", 0)),
            timeouts=int(data.get("timeouts", 0)),
            retries=int(data.get("retries", 0)),
            degraded_accesses=int(data.get("degraded_accesses", 0)),
            deferred_writebacks=int(data.get("deferred_writebacks", 0)),
            corruptions_detected=int(data.get("corruptions_detected", 0)),
            corruptions_repaired=int(data.get("corruptions_repaired", 0)),
            quarantined_objects=int(data.get("quarantined_objects", 0)),
            journal_replays=int(data.get("journal_replays", 0)),
            tier_switches=int(data.get("tier_switches", 0)),
            objects_migrated=int(data.get("objects_migrated", 0)),
            replica_writes=int(data.get("replica_writes", 0)),
            quorum_reads=int(data.get("quorum_reads", 0)),
            read_repairs=int(data.get("read_repairs", 0)),
            failovers=int(data.get("failovers", 0)),
            stale_replicas_healed=int(data.get("stale_replicas_healed", 0)),
        )
        for key, n in dict(data.get("guards", {})).items():
            if int(n):
                m.count_guard(GuardKind(key), int(n))
        return m

    @classmethod
    def aggregate(cls, bundles: "Iterable[Metrics]") -> "Metrics":
        """Fold many bundles (e.g. one per shard) into a fresh one."""
        total = cls()
        for bundle in bundles:
            total.merge(bundle)
        return total
