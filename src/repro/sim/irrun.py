"""Bridge between the IR interpreter and the TrackFM runtime.

The compiler's transformed IR calls ``tfm_*`` entry points; this module
implements them as interpreter intrinsics backed by a real
:class:`TrackFMRuntime`.  Data for TrackFM allocations lives at a
*canonical twin* address range — the simulation analogue of "the guard
reverts the non-canonical address back into a canonical address"
(§3.3): ``tfm_malloc`` maps bytes at ``TWIN_BASE + heap_offset`` and
returns the tagged pointer ``2^60 | heap_offset``; guards translate one
to the other while charging their cycle costs.

An *untransformed* program that receives a TrackFM pointer and
dereferences it without a guard touches unmapped memory and gets a
:class:`SegmentationFault` — exactly the GP fault the paper's
non-canonical encoding guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import InterpError, PointerError
from repro.ir.module import Module
from repro.machine.costs import AccessKind
from repro.sim.interpreter import Interpreter, InterpResult
from repro.trackfm.pointer import decode_tfm_pointer, is_tfm_pointer
from repro.trackfm.runtime import TrackFMRuntime

#: Canonical twin base: 2^43, comfortably inside the 47-bit canonical
#: range and away from the interpreter's stack/global/libc-heap bases.
TWIN_BASE = 1 << 43


class TrackFMProgram:
    """A transformed module wired to a TrackFM runtime, ready to run."""

    def __init__(
        self,
        module: Module,
        runtime: TrackFMRuntime,
        max_steps: int = 50_000_000,
        engine: Optional[str] = None,
    ) -> None:
        self.module = module
        self.runtime = runtime
        self.interp = Interpreter(module, max_steps=max_steps, engine=engine)
        self._prefetch_flags: Dict[int, bool] = {}
        self._register_intrinsics()

    # -- public API --------------------------------------------------------

    def run(self, entry: str = "main", args: Optional[List[object]] = None) -> InterpResult:
        """Execute the transformed program.

        When the runtime carries an enabled tracer, the whole interpreted
        run is bracketed as a ``phase`` span on the simulated-cycle
        timeline (so guard/fetch events nest under it in Perfetto).
        """
        tracer = self.runtime.tracer
        if not tracer.enabled:
            return self.interp.run(entry, args or [])
        name = f"interpret:{entry}"
        tracer.begin_phase(name, self.runtime.metrics.cycles)
        try:
            result = self.interp.run(entry, args or [])
        finally:
            tracer.end_phase(name, self.runtime.metrics.cycles)
        tracer.counter(
            "interp_steps", self.runtime.metrics.cycles, steps=result.steps
        )
        return result

    def twin_addr(self, tfm_ptr: int) -> int:
        """Canonical twin of a TrackFM pointer."""
        return TWIN_BASE + decode_tfm_pointer(tfm_ptr)

    # -- intrinsics -----------------------------------------------------------

    def _register_intrinsics(self) -> None:
        reg = self.interp.register_intrinsic
        reg("tfm_runtime_init", self._init)
        reg("tfm_malloc", self._malloc)
        reg("tfm_malloc_pinned", self._malloc_pinned)
        reg("tfm_calloc", self._calloc)
        reg("tfm_realloc", self._realloc)
        reg("tfm_free", self._free)
        reg("tfm_guard_read", self._guard_read)
        reg("tfm_guard_write", self._guard_write)
        reg("tfm_chunk_begin", self._chunk_begin)
        reg("tfm_chunk_deref", self._chunk_deref_read)
        reg("tfm_chunk_deref_write", self._chunk_deref_write)
        reg("tfm_chunk_end", self._chunk_end)
        reg("tfm_prefetch_sched", self._prefetch_sched)
        reg("tfm_chase_deref", self._chase_deref_read)
        reg("tfm_chase_deref_write", self._chase_deref_write)
        reg("tfm_offload_reduce", self._offload_reduce)

    def _init(self, interp: Interpreter, args: List[object]) -> None:
        self.runtime.initialize()
        return None

    def _map_twin(self, tfm_ptr: int) -> None:
        alloc = self.runtime.allocation_of(tfm_ptr)
        base = TWIN_BASE + alloc.offset
        if not self.interp.memory.is_mapped(base, 1):
            self.interp.memory.map_region(base, alloc.size, label="tfm-heap")

    def _malloc(self, interp: Interpreter, args: List[object]) -> int:
        ptr = self.runtime.tfm_malloc(int(args[0]))
        self._map_twin(ptr)
        return ptr

    def _malloc_pinned(self, interp: Interpreter, args: List[object]) -> int:
        """Pinned local heap (heap-pruning extension): returns a
        *canonical* pointer — the memory can never be remoted, so no
        guard (and no non-canonical tag) is needed."""
        offset = self.runtime.tfm_malloc_pinned(int(args[0]))
        alloc = self.runtime.allocator.allocation_at(offset)
        assert alloc is not None
        base = TWIN_BASE + alloc.offset
        if not self.interp.memory.is_mapped(base, 1):
            self.interp.memory.map_region(base, alloc.size, label="tfm-pinned")
        return base

    def _calloc(self, interp: Interpreter, args: List[object]) -> int:
        ptr = self.runtime.tfm_calloc(int(args[0]), int(args[1]))
        self._map_twin(ptr)
        return ptr

    def _realloc(self, interp: Interpreter, args: List[object]) -> int:
        old_ptr, new_size = int(args[0]), int(args[1])
        if old_ptr == 0:
            return self._malloc(interp, [new_size])
        old_alloc = self.runtime.allocation_of(old_ptr)
        new_ptr = self._malloc(interp, [new_size])
        n = min(old_alloc.size, int(new_size))
        data = interp.memory.read_bytes(TWIN_BASE + old_alloc.offset, n)
        interp.memory.write_bytes(self.twin_addr(new_ptr), data)
        self._free(interp, [old_ptr])
        return new_ptr

    def _free(self, interp: Interpreter, args: List[object]) -> None:
        ptr = int(args[0])
        if ptr == 0:
            return None
        alloc = self.runtime.allocation_of(ptr)
        self.runtime.tfm_free(ptr)
        base = TWIN_BASE + alloc.offset
        if interp.memory.is_mapped(base, 1):
            interp.memory.unmap(base)
        return None

    # -- guards ---------------------------------------------------------

    def _guard(self, ptr: int, kind: AccessKind) -> int:
        if not is_tfm_pointer(ptr):
            # Custody miss: the original pointer is used untouched.
            result = self.runtime.guards.guard(ptr, kind)
            self.runtime.metrics.cycles += result.cycles
            return ptr
        result = self.runtime.guards.guard(ptr, kind)
        self.runtime.metrics.accesses += 1
        self.runtime.metrics.cycles += (
            result.cycles + self.runtime.costs.local_access
        )
        return TWIN_BASE + decode_tfm_pointer(ptr)

    def _guard_read(self, interp: Interpreter, args: List[object]) -> int:
        return self._guard(int(args[0]), AccessKind.READ)

    def _guard_write(self, interp: Interpreter, args: List[object]) -> int:
        return self._guard(int(args[0]), AccessKind.WRITE)

    # -- chunked streams --------------------------------------------------

    def _chunk_begin(self, interp: Interpreter, args: List[object]) -> None:
        stream, prefetch = int(args[0]), bool(args[1])
        self._prefetch_flags[stream] = prefetch
        self.runtime.chunk_begin(stream)
        return None

    def _chunk_deref(self, ptr: int, stream: int, kind: AccessKind) -> int:
        if not is_tfm_pointer(ptr):
            return ptr
        self.runtime.chunk_access(
            ptr, kind, stream=stream, prefetch=self._prefetch_flags.get(stream, False)
        )
        return TWIN_BASE + decode_tfm_pointer(ptr)

    def _chunk_deref_read(self, interp: Interpreter, args: List[object]) -> int:
        return self._chunk_deref(int(args[0]), int(args[1]), AccessKind.READ)

    def _chunk_deref_write(self, interp: Interpreter, args: List[object]) -> int:
        return self._chunk_deref(int(args[0]), int(args[1]), AccessKind.WRITE)

    def _chunk_end(self, interp: Interpreter, args: List[object]) -> None:
        self.runtime.chunk_end(int(args[0]))
        return None

    def _prefetch_sched(self, interp: Interpreter, args: List[object]) -> None:
        base, offset, stride, count, distance, stream = (int(a) for a in args)
        self.runtime.install_prefetch_schedule(
            stream, base, offset, stride, count, distance
        )
        return None

    # -- pointer-chase prefetching (recursive data structures) ------------

    def _chase_deref(self, args: List[object], kind: AccessKind) -> int:
        """Guard a node access, then greedily prefetch node->next.

        Greedy (Luk & Mowry) prefetching only sees one node ahead, so
        the prefetch is charged at a shallow pipeline depth.
        """
        ptr, node, next_off, _stream = (int(a) for a in args)
        canon = self._guard(ptr, kind)
        if not is_tfm_pointer(node):
            return canon
        node_canon = TWIN_BASE + decode_tfm_pointer(node)
        from repro.ir.types import PTR as _PTR

        if not self.interp.memory.is_mapped(node_canon + next_off, 8):
            return canon
        next_ptr = int(self.interp.memory.read_value(node_canon + next_off, _PTR))
        if is_tfm_pointer(next_ptr):
            pool = self.runtime.pool
            obj = decode_tfm_pointer(next_ptr) >> pool.object_shift
            if 0 <= obj < pool.config.num_objects:
                # The thread is inside a guard: the evacuator barrier
                # (§3.3) cannot evict the object under access, so pin it
                # for the duration of the prefetch's eviction decision.
                cur = decode_tfm_pointer(ptr) >> pool.object_shift
                pool.pin(cur)
                try:
                    self.runtime.metrics.cycles += pool.prefetch(obj, depth=2)
                finally:
                    pool.unpin(cur)
        return canon

    def _chase_deref_read(self, interp: Interpreter, args: List[object]) -> int:
        return self._chase_deref(args, AccessKind.READ)

    def _chase_deref_write(self, interp: Interpreter, args: List[object]) -> int:
        return self._chase_deref(args, AccessKind.WRITE)

    # -- computation offload (near-data processing) ------------------------

    #: Remote CPU cycles per element of an offloaded reduction (the far
    #: node scans its own DRAM at memory speed).
    OFFLOAD_REMOTE_CYCLES_PER_ELEM = 4.0
    #: Request/response message payload (descriptor + scalar result).
    OFFLOAD_MESSAGE_BYTES = 64

    def _offload_reduce(self, interp: Interpreter, args: List[object]) -> int:
        """Run a reduction on the remote node instead of fetching data.

        Dirty local objects in the range are flushed first so the remote
        scans current data; the application then blocks for one request/
        response round trip plus the remote scan time — no data fetch.
        """
        from repro.compiler.offload import REDUCE_OPS
        from repro.ir.types import I64 as _I64

        base, n, elem, op_code, init = (int(a) for a in args)
        if n <= 0:
            return init
        if not is_tfm_pointer(base):
            raise InterpError("tfm_offload_reduce on a non-TrackFM pointer")
        runtime = self.runtime
        pool = runtime.pool
        link = pool.backend.link
        offset = decode_tfm_pointer(base)

        cycles = 0.0
        # Flush dirty objects covering the range (write-back before read).
        first_obj = offset >> pool.object_shift
        last_obj = (offset + n * elem - 1) >> pool.object_shift
        for obj in range(first_obj, last_obj + 1):
            if obj < pool.config.num_objects and pool.residency.is_dirty(obj):
                cycles += pool.backend.evict(pool.object_size, depth=4)
                runtime.metrics.bytes_evacuated += pool.object_size
                pool.residency.mark_clean(obj)
        # Ship the request, remote scan, ship the result.
        cycles += link.transfer_cycles(self.OFFLOAD_MESSAGE_BYTES)
        cycles += n * self.OFFLOAD_REMOTE_CYCLES_PER_ELEM
        cycles += link.transfer_cycles(self.OFFLOAD_MESSAGE_BYTES)
        link.stats.messages += 2
        link.stats.bytes_fetched += self.OFFLOAD_MESSAGE_BYTES
        link.stats.bytes_evicted += self.OFFLOAD_MESSAGE_BYTES
        runtime.metrics.bytes_fetched += self.OFFLOAD_MESSAGE_BYTES
        runtime.metrics.cycles += cycles
        runtime.metrics.remote_fetches += 1
        tracer = runtime.tracer
        if tracer.enabled:
            tracer.fetch(
                self.OFFLOAD_MESSAGE_BYTES, cycles, runtime.metrics.cycles,
                n=1, name="offload_reduce",
            )

        # The remote node computes over its authoritative copy — in the
        # simulation that is the twin memory.  Arithmetic matches the
        # interpreter's: signed two's complement at the element width.
        from repro.sim.interpreter import _wrap

        op_name = {v: k for k, v in REDUCE_OPS.items()}[op_code]
        twin = TWIN_BASE + offset
        bits = min(elem * 8, 64)
        mask = (1 << bits) - 1
        acc = init
        for i in range(n):
            raw = self.interp.memory.read_bytes(twin + i * elem, elem)
            value = int.from_bytes(raw, "little", signed=True)
            if op_name == "add":
                acc = _wrap(acc + value, bits)
            elif op_name == "xor":
                acc = _wrap((acc & mask) ^ (value & mask), bits)
            elif op_name == "and":
                acc = _wrap((acc & mask) & (value & mask), bits)
            else:
                acc = _wrap((acc & mask) | (value & mask), bits)
        return acc
