"""Local-only baseline: all memory fits; nothing is remote.

Figs. 14–17 normalize to "a setup with only local memory"; this runtime
provides that denominator with the same accounting interface as the
far-memory runtimes.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS
from repro.sim.metrics import Metrics


class LocalRuntime:
    """Charges only raw access costs; never faults, never fetches."""

    def __init__(self, costs: CostTable = DEFAULT_COSTS) -> None:
        self.costs = costs
        self.metrics = Metrics()

    def allocate(self, size: int) -> int:
        return 0

    def access(
        self, offset: int, kind: AccessKind = AccessKind.READ, size: int = 8
    ) -> float:
        cycles = self.costs.local_access
        self.metrics.accesses += 1
        self.metrics.cycles += cycles
        return cycles

    def sequential_scan(
        self,
        offset: int,
        n_elems: int,
        elem_size: int,
        kind: AccessKind = AccessKind.READ,
        body_cycles: Optional[float] = None,
    ) -> float:
        body = self.costs.local_access if body_cycles is None else body_cycles
        cycles = n_elems * body
        self.metrics.accesses += n_elems
        self.metrics.cycles += cycles
        return cycles
