"""A sparse, region-based byte-addressable address space.

The interpreter's memory is a set of non-overlapping regions, each a
``bytearray``.  Accessing an unmapped address raises
:class:`SegmentationFault` — the behaviour a non-canonical (TrackFM)
pointer triggers on real x86 when it escapes to an unguarded load/store
(§3.1, footnote 3).
"""

from __future__ import annotations

import bisect
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import InterpError, SegmentationFault
from repro.ir.types import IRType, IntType


@dataclass
class MemoryRegion:
    """One mapped range [start, start+len(data))."""

    start: int
    data: bytearray
    label: str = ""

    @property
    def end(self) -> int:
        return self.start + len(self.data)

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.start <= addr and addr + size <= self.end


class AddressSpace:
    """Sorted, non-overlapping memory regions with typed accessors."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._regions: List[MemoryRegion] = []

    # -- mapping --------------------------------------------------------

    def map_region(self, start: int, size: int, label: str = "") -> MemoryRegion:
        """Map ``size`` zeroed bytes at ``start``; rejects overlaps."""
        if size <= 0:
            raise InterpError("cannot map empty region")
        idx = bisect.bisect_right(self._starts, start)
        if idx > 0 and self._regions[idx - 1].end > start:
            raise InterpError(f"overlap mapping {start:#x} (+{size})")
        if idx < len(self._regions) and self._regions[idx].start < start + size:
            raise InterpError(f"overlap mapping {start:#x} (+{size})")
        region = MemoryRegion(start, bytearray(size), label)
        self._starts.insert(idx, start)
        self._regions.insert(idx, region)
        return region

    def unmap(self, start: int) -> None:
        """Unmap the region beginning exactly at ``start``."""
        idx = bisect.bisect_left(self._starts, start)
        if idx >= len(self._starts) or self._starts[idx] != start:
            raise InterpError(f"no region starts at {start:#x}")
        del self._starts[idx]
        del self._regions[idx]

    def region_for(self, addr: int, size: int = 1) -> MemoryRegion:
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(addr, size):
                return region
        raise SegmentationFault(
            f"access to unmapped address {addr:#x} (size {size})"
        )

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        try:
            self.region_for(addr, size)
            return True
        except SegmentationFault:
            return False

    def regions(self) -> List[MemoryRegion]:
        return list(self._regions)

    # -- raw bytes --------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        region = self.region_for(addr, size)
        off = addr - region.start
        return bytes(region.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        region = self.region_for(addr, len(data))
        off = addr - region.start
        region.data[off : off + len(data)] = data

    # -- typed accessors --------------------------------------------------

    def read_value(self, addr: int, ty: IRType):
        size = ty.size_bytes()
        raw = self.read_bytes(addr, size)
        if ty.is_float():
            return struct.unpack("<d", raw)[0]
        if ty.is_pointer():
            return int.from_bytes(raw, "little")
        assert isinstance(ty, IntType)
        value = int.from_bytes(raw, "little")
        if ty.bits > 1 and value >= (1 << (ty.bits - 1)):
            value -= 1 << ty.bits
        return value

    def write_value(self, addr: int, ty: IRType, value) -> None:
        size = ty.size_bytes()
        if ty.is_float():
            raw = struct.pack("<d", float(value))
        elif ty.is_pointer():
            raw = int(value).to_bytes(8, "little", signed=False)
        else:
            assert isinstance(ty, IntType)
            mask = (1 << ty.bits) - 1
            raw = (int(value) & mask).to_bytes(size, "little")
        self.write_bytes(addr, raw)
