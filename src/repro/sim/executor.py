"""Replay access streams against a far-memory runtime.

Workload generators produce numpy arrays of offsets (or tagged
pointers); the executor feeds them through a runtime's per-access path
and returns the aggregate cycle cost.  This is the irregular-pattern
counterpart to the runtimes' closed-form ``sequential_scan``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind

AccessFn = Callable[..., float]


class AccessStreamExecutor:
    """Drives one runtime's ``access`` callable over an address stream."""

    def __init__(self, access_fn: AccessFn) -> None:
        self.access_fn = access_fn

    def replay(
        self,
        addrs: Sequence[int],
        kind: AccessKind = AccessKind.READ,
        size: int = 8,
    ) -> float:
        """Replay a homogeneous stream; returns total cycles."""
        access = self.access_fn
        if isinstance(addrs, np.ndarray):
            # One bulk conversion instead of one numpy-scalar __int__
            # per access; ndarray.tolist() yields native Python ints.
            addrs = addrs.tolist()
            total = 0.0
            for addr in addrs:
                total += access(addr, kind, size)
            return total
        total = 0.0
        for addr in addrs:
            total += access(int(addr), kind, size)
        return total

    def replay_mixed(
        self,
        addrs: Sequence[int],
        write_mask: Sequence[bool],
        size: int = 8,
    ) -> float:
        """Replay a stream with per-access read/write kinds."""
        if len(addrs) != len(write_mask):
            raise WorkloadError("addrs and write_mask length mismatch")
        access = self.access_fn
        read, write = AccessKind.READ, AccessKind.WRITE
        if isinstance(addrs, np.ndarray):
            addrs = addrs.tolist()
        if isinstance(write_mask, np.ndarray):
            write_mask = write_mask.tolist()
        total = 0.0
        for addr, is_write in zip(addrs, write_mask):
            total += access(int(addr), write if is_write else read, size)
        return total


def replay_offsets(
    runtime,
    offsets: Iterable[int],
    kind: AccessKind = AccessKind.READ,
    size: int = 8,
) -> float:
    """Convenience wrapper: replay ``offsets`` on ``runtime.access``."""
    executor = AccessStreamExecutor(runtime.access)
    return executor.replay(np.asarray(list(offsets)), kind=kind, size=size)
