"""Execution engines.

Two tiers, sharing one cost table:

* :mod:`repro.sim.interpreter` executes transformed IR directly, byte-
  accurate, with runtime intrinsics bridged in (:mod:`repro.sim.irrun`)
  — used by tests, examples and the Fig. 6 microbenchmark.
* :mod:`repro.sim.executor` replays workload *access streams* against
  the far-memory runtime simulators, and the runtimes provide
  closed-form ``sequential_scan`` bulk paths — used by the GB-shaped
  sweeps behind Figs. 7–17.
"""

from repro.sim.memory import AddressSpace, MemoryRegion
from repro.sim.decode import DecodedFunction, DecodedModule, decode_module
from repro.sim.interpreter import Interpreter, InterpResult
from repro.sim.metrics import Metrics
from repro.sim.residency import ResidencySet, AccessOutcome
from repro.sim.executor import AccessStreamExecutor, replay_offsets
from repro.sim.local import LocalRuntime

# NOTE: repro.sim.irrun (TrackFMProgram, TWIN_BASE) is intentionally not
# imported here: it depends on repro.trackfm, which depends back on this
# package's metrics/residency modules.  Import it directly:
#     from repro.sim.irrun import TrackFMProgram

__all__ = [
    "AddressSpace",
    "MemoryRegion",
    "DecodedFunction",
    "DecodedModule",
    "decode_module",
    "Interpreter",
    "InterpResult",
    "Metrics",
    "ResidencySet",
    "AccessOutcome",
    "AccessStreamExecutor",
    "replay_offsets",
    "LocalRuntime",
]
