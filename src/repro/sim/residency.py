"""Residency simulation: which objects/pages are local right now?

Both far-memory designs in the paper keep a bounded set of granules
(AIFM objects / 4 KB pages) in local memory and evict under pressure.
:class:`ResidencySet` is that engine: LRU with pinning (AIFM's
DerefScope prevents the evacuator from moving in-use objects, §3.3) and
dirty tracking (dirty granules must be written back on eviction; clean
ones can be dropped).

A second-chance "hot bit" (CLOCK) mode approximates AIFM's
hotness-driven evacuator; plain LRU matches Linux's reclaim closely
enough for the shapes this reproduction targets.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import EvacuationError, RuntimeConfigError


@dataclass
class AccessOutcome:
    """Result of touching one granule."""

    hit: bool
    #: (granule id, was_dirty) pairs evicted to make room.
    evicted: List[Tuple[int, bool]]


class ResidencySet:
    """A bounded set of resident granule ids with LRU/CLOCK eviction."""

    def __init__(self, capacity: int, use_clock: bool = False) -> None:
        if capacity < 1:
            raise RuntimeConfigError("residency capacity must be >= 1")
        self.capacity = capacity
        self.use_clock = use_clock
        # id -> hot bit (CLOCK) / ignored (LRU); OrderedDict keeps recency.
        self._resident: "OrderedDict[int, bool]" = OrderedDict()
        self._dirty: Set[int] = set()
        self._pinned: Dict[int, int] = {}

    # -- queries --------------------------------------------------------

    def __contains__(self, granule: int) -> bool:
        return granule in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def is_dirty(self, granule: int) -> bool:
        return granule in self._dirty

    def is_pinned(self, granule: int) -> bool:
        return self._pinned.get(granule, 0) > 0

    def resident_ids(self) -> List[int]:
        return list(self._resident.keys())

    # -- pinning (DerefScope) ------------------------------------------------

    def pin(self, granule: int) -> None:
        """Prevent eviction of ``granule`` until unpinned."""
        self._pinned[granule] = self._pinned.get(granule, 0) + 1

    def unpin(self, granule: int) -> None:
        count = self._pinned.get(granule, 0)
        if count <= 0:
            raise EvacuationError(f"unpin of unpinned granule {granule}")
        if count == 1:
            del self._pinned[granule]
        else:
            self._pinned[granule] = count - 1

    # -- the core access path ---------------------------------------------

    def access(self, granule: int, write: bool = False) -> AccessOutcome:
        """Touch ``granule``; fetch + evict as needed.

        Returns whether it was a hit and which granules were evicted.
        """
        if granule in self._resident:
            if self.use_clock:
                self._resident[granule] = True
            else:
                self._resident.move_to_end(granule)
            if write:
                self._dirty.add(granule)
            return AccessOutcome(hit=True, evicted=[])
        evicted = self._make_room()
        self._resident[granule] = False
        if write:
            self._dirty.add(granule)
        return AccessOutcome(hit=False, evicted=evicted)

    def insert(self, granule: int) -> List[Tuple[int, bool]]:
        """Bring ``granule`` local without recording an access (prefetch)."""
        if granule in self._resident:
            return []
        evicted = self._make_room()
        # Prefetched granules enter cold (at LRU head) so a useless
        # prefetch is the first thing evicted.
        self._resident[granule] = False
        self._resident.move_to_end(granule, last=False)
        return evicted

    def mark_clean(self, granule: int) -> None:
        """Clear a granule's dirty bit (after an explicit writeback)."""
        self._dirty.discard(granule)

    def discard(self, granule: int) -> None:
        """Drop a granule (free of the backing allocation)."""
        self._resident.pop(granule, None)
        self._dirty.discard(granule)
        self._pinned.pop(granule, None)

    def _make_room(self) -> List[Tuple[int, bool]]:
        evicted: List[Tuple[int, bool]] = []
        guard = 0
        while len(self._resident) >= self.capacity:
            victim = self._pick_victim()
            if victim is None:
                raise EvacuationError(
                    "all resident granules are pinned; cannot evict "
                    f"(capacity={self.capacity}, pinned={len(self._pinned)})"
                )
            was_dirty = victim in self._dirty
            self._resident.pop(victim)
            self._dirty.discard(victim)
            evicted.append((victim, was_dirty))
            guard += 1
            if guard > self.capacity + 1:  # pragma: no cover - safety net
                raise EvacuationError("eviction loop did not terminate")
        return evicted

    def _pick_victim(self) -> Optional[int]:
        if not self.use_clock:
            for granule in self._resident:
                if not self.is_pinned(granule):
                    return granule
            return None
        # CLOCK: clear hot bits until a cold, unpinned granule surfaces.
        for _ in range(2 * len(self._resident) + 1):
            granule, hot = next(iter(self._resident.items()))
            if hot:
                self._resident[granule] = False
                self._resident.move_to_end(granule)
                continue
            if self.is_pinned(granule):
                self._resident.move_to_end(granule)
                continue
            return granule
        return None

    def flush(self) -> List[Tuple[int, bool]]:
        """Evict everything evictable (used at teardown to count writebacks)."""
        out: List[Tuple[int, bool]] = []
        for granule in list(self._resident.keys()):
            if self.is_pinned(granule):
                continue
            out.append((granule, granule in self._dirty))
            self._resident.pop(granule)
            self._dirty.discard(granule)
        return out
