"""Pre-decoded IR: the interpreter's "compile" step.

The legacy interpreter re-discovers everything about an instruction on
every dynamic execution: an ``isinstance`` ladder for the opcode, a
``dict`` lookup per operand, attribute walks for branch targets.  For a
simulator whose whole job is to execute hundreds of millions of
instructions, that per-step rediscovery *is* the product's speed limit —
the same lesson TrackFM applies to guards (do the work once, at compile
time) applied to our own execution loop.

``decode_module`` lowers every defined function once into
:class:`DecodedFunction` records:

* every SSA value gets an integer **register slot**; constants and
  undefs are materialized into a per-function register template, so at
  run time every operand is one list index;
* every instruction becomes a flat **op tuple** ``(opcode_int, ...)``
  with operands resolved to slot indices and immediates (element sizes,
  bit widths, IR types for memory ops) baked in;
* branch targets are resolved to **block indices**; phi nodes disappear
  entirely, replaced by per-edge parallel-copy lists executed when the
  edge is taken;
* call sites are resolved to a per-module **callee id**.  Classification
  (internal function / ``global_addr.*`` / external) happens here; the
  interpreter resolves a callee id to a concrete callable once and
  caches it, so a hot intrinsic call — a TrackFM/AIFM/Fastswap guard
  check — costs one list index per execution after the first, the
  decode-layer analogue of the tracer's one-attribute-check pattern.

The decoded form is **cached on the module** (`Module._decoded_cache`)
and invalidated by :class:`~repro.compiler.pass_manager.PassManager`
after every pass via :meth:`Module.invalidate_decode`.  As a safety net
against out-of-band IR mutation, the cache also remembers the module's
instruction count and re-decodes when it changes.

Decoding is runtime-agnostic: nothing interpreter- or intrinsic-specific
is baked in, so one decoded module is shared by every interpreter that
runs it.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Tuple

from repro.errors import IRTypeError
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import IntType
from repro.ir.values import Constant, UndefValue, Value

# -- opcodes ------------------------------------------------------------------
#
# Small ints; the interpreter's dispatch chain tests the hottest ones
# first, so the numbering is frequency-ordered only for readability.

OP_ADD64 = 0
OP_GEP = 1
OP_LOAD = 2
OP_CALL = 3
OP_ICMP_SLT = 4
OP_CONDBR = 5
OP_STORE = 6
OP_BR = 7
OP_RET = 8
OP_MUL64 = 9
OP_SUB64 = 10
OP_AND64 = 11
OP_OR64 = 12
OP_XOR64 = 13
OP_ICMP_EQ = 14
OP_ICMP_NE = 15
OP_ICMP_SLE = 16
OP_ICMP_SGT = 17
OP_ICMP_SGE = 18
OP_ICMP_U = 19
OP_SELECT = 20
OP_ALLOCA = 21
OP_SDIV = 22
OP_SREM = 23
OP_SHL = 24
OP_LSHR = 25
OP_ASHR = 26
OP_BINW = 27
OP_FADD = 28
OP_FSUB = 29
OP_FMUL = 30
OP_FDIV = 31
OP_FCMP = 32
OP_PTRTOINT = 33
OP_INTTOPTR = 34
OP_WRAP = 35  # trunc / sext: wrap to a target width
OP_ZEXT = 36
OP_SITOFP = 37
OP_FPTOSI = 38
OP_RAISE = 39

#: Specialized 64-bit integer binops (the dominant case in this IR).
_BIN64 = {
    "add": OP_ADD64,
    "sub": OP_SUB64,
    "mul": OP_MUL64,
    "and": OP_AND64,
    "or": OP_OR64,
    "xor": OP_XOR64,
}

#: Width-generic wrapped binops fall back to a Python operator.
_BINW_FNS = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "and": operator.and_,
    "or": operator.or_,
    "xor": operator.xor,
}

_ICMP_SIGNED = {
    "eq": OP_ICMP_EQ,
    "ne": OP_ICMP_NE,
    "slt": OP_ICMP_SLT,
    "sle": OP_ICMP_SLE,
    "sgt": OP_ICMP_SGT,
    "sge": OP_ICMP_SGE,
}

#: Unsigned predicates: mask both sides to 64 bits, then compare —
#: exactly the legacy interpreter's ``_unsigned`` + signed-compare path.
_ICMP_UNSIGNED = {
    "ult": operator.lt,
    "ule": operator.le,
    "ugt": operator.gt,
    "uge": operator.ge,
}

_FCMP_FNS = {
    "oeq": operator.eq,
    "one": operator.ne,
    "olt": operator.lt,
    "ole": operator.le,
    "ogt": operator.gt,
    "oge": operator.ge,
}

#: Callee classification tags (static, module-level).
CALLEE_INTERNAL = "internal"
CALLEE_EXTERNAL = "external"
CALLEE_GLOBAL = "global"


class DecodedFunction:
    """One function lowered to flat per-block op tuples."""

    __slots__ = ("func", "name", "nargs", "template", "blocks", "names", "start")

    def __init__(self, func: Function) -> None:
        self.func = func
        self.name = func.name
        self.nargs = len(func.args)
        #: Register template: ``template[:]`` is a ready frame.  The
        #: first ``nargs`` slots are argument slots; constant/undef
        #: slots are pre-filled with their Python values.
        self.template: List[object] = []
        #: Per-block op tuples; indices into this list are branch targets.
        self.blocks: List[Tuple[tuple, ...]] = []
        #: Block display names (for block hooks), parallel to ``blocks``.
        self.names: List[str] = []
        #: Index of the block execution starts in (a synthetic error
        #: block when the entry block illegally starts with phis).
        self.start = 0


class DecodedModule:
    """All defined functions of one module, decoded, plus the callee table."""

    __slots__ = (
        "module", "epoch", "inst_count", "functions",
        "callees", "callee_static", "_callee_ids",
    )

    def __init__(self, module: Module) -> None:
        self.module = module
        self.epoch = module.decode_epoch
        self.inst_count = module.instruction_count()
        self.functions: Dict[str, DecodedFunction] = {}
        #: Callee id -> name (parallel to interpreters' resolution caches).
        self.callees: List[str] = []
        #: Callee id -> static classification ``(tag, payload_name)``.
        self.callee_static: List[Tuple[str, str]] = []
        self._callee_ids: Dict[str, int] = {}
        for func in module.defined_functions():
            self.functions[func.name] = _decode_function(self, func)

    def callee_id(self, name: str) -> int:
        cid = self._callee_ids.get(name)
        if cid is None:
            cid = len(self.callees)
            self._callee_ids[name] = cid
            self.callees.append(name)
            if name.startswith("global_addr."):
                self.callee_static.append((CALLEE_GLOBAL, name[len("global_addr."):]))
            elif self.module.has_function(name) and not self.module.get_function(
                name
            ).is_declaration:
                self.callee_static.append((CALLEE_INTERNAL, name))
            else:
                self.callee_static.append((CALLEE_EXTERNAL, name))
        return cid


def decode_module(module: Module) -> DecodedModule:
    """The decoded form of ``module``, cached until the IR changes.

    Reuse requires both the epoch stamp (bumped by
    :meth:`Module.invalidate_decode`, which the pass manager calls after
    every pass) and the instruction count to match — the latter catches
    direct IR surgery done outside any pass pipeline.
    """
    cached = module._decoded_cache
    if (
        cached is not None
        and cached.epoch == module.decode_epoch
        and cached.inst_count == module.instruction_count()
    ):
        return cached
    decoded = DecodedModule(module)
    module._decoded_cache = decoded
    return decoded


# -- per-function lowering ----------------------------------------------------


def _decode_function(dmod: DecodedModule, func: Function) -> DecodedFunction:
    df = DecodedFunction(func)
    template = df.template
    slots: Dict[int, int] = {}

    for i, arg in enumerate(func.args):
        slots[id(arg)] = i
        template.append(None)

    def def_slot(value: Value) -> int:
        s = slots.get(id(value))
        if s is None:
            s = len(template)
            slots[id(value)] = s
            template.append(None)
        return s

    def use_slot(value: Value) -> int:
        s = slots.get(id(value))
        if s is not None:
            return s
        s = len(template)
        slots[id(value)] = s
        if isinstance(value, Constant):
            template.append(value.value)
        elif isinstance(value, UndefValue):
            template.append(0)
        else:
            # A value used before any definition was seen; blocks are
            # decoded in layout order, so this is a back-reference to a
            # later definition (legal in loops) — reserve its slot.
            template.append(None)
        return s

    block_index = {id(b): i for i, b in enumerate(func.blocks)}

    def edge_target(pred, succ) -> Tuple[int, tuple, int]:
        """(target index, phi parallel copies, phi count) for one CFG edge."""
        phis = succ.phis()
        if not phis:
            return block_index[id(succ)], (), 0
        try:
            copies = tuple(
                (def_slot(phi), use_slot(phi.incoming_for(pred))) for phi in phis
            )
        except IRTypeError as exc:
            # Taking this edge is a runtime error in the legacy engine;
            # route it to a synthetic block that raises on execution.
            return _error_block(df, succ.name, str(exc)), (), 0
        return block_index[id(succ)], copies, len(phis)

    for block in func.blocks:
        ops: List[tuple] = []
        phis = block.phis()
        for inst in block.instructions[len(phis):]:
            ops.append(_decode_inst(dmod, inst, def_slot, use_slot, edge_target))
        if not ops or ops[-1][0] not in (OP_BR, OP_CONDBR, OP_RET, OP_RAISE):
            ops.append(
                (OP_RAISE, f"block %{block.name} fell through without terminator")
            )
        df.blocks.append(tuple(ops))
        df.names.append(block.name)

    if func.blocks and func.blocks[0].phis():
        # The legacy engine rejects this on first entry (no predecessor
        # edge to evaluate the phis from); later entries via a back edge
        # are fine, so only the *start* index points at the error block.
        df.start = _error_block(
            df, func.blocks[0].name, f"phi in entry block %{func.blocks[0].name}"
        )
    return df


def _error_block(df: DecodedFunction, name: str, message: str) -> int:
    """Append a synthetic block raising ``message``; returns its index."""
    df.blocks.append(((OP_RAISE, message),))
    df.names.append(name)
    return len(df.blocks) - 1


def _bits_of(inst) -> int:
    return inst.type.bits if isinstance(inst.type, IntType) else 64


def _decode_inst(dmod, inst, def_slot, use_slot, edge_target) -> tuple:
    if isinstance(inst, BinOp):
        op = inst.opcode
        if op.startswith("f"):
            a, b = use_slot(inst.lhs), use_slot(inst.rhs)
            tag = {"fadd": OP_FADD, "fsub": OP_FSUB, "fmul": OP_FMUL, "fdiv": OP_FDIV}[op]
            return (tag, def_slot(inst), a, b)
        bits = _bits_of(inst)
        a, b = use_slot(inst.lhs), use_slot(inst.rhs)
        d = def_slot(inst)
        if bits == 64 and op in _BIN64:
            return (_BIN64[op], d, a, b)
        if op in _BINW_FNS:
            return (OP_BINW, d, a, b, bits, _BINW_FNS[op])
        tag = {
            "sdiv": OP_SDIV,
            "srem": OP_SREM,
            "shl": OP_SHL,
            "lshr": OP_LSHR,
            "ashr": OP_ASHR,
        }[op]
        return (tag, d, a, b, bits)
    if isinstance(inst, Load):
        return (OP_LOAD, def_slot(inst), use_slot(inst.pointer), inst.type)
    if isinstance(inst, Store):
        return (OP_STORE, use_slot(inst.value), inst.value.type, use_slot(inst.pointer))
    if isinstance(inst, Gep):
        return (OP_GEP, def_slot(inst), use_slot(inst.base), use_slot(inst.index),
                inst.elem_size)
    if isinstance(inst, ICmp):
        a, b = use_slot(inst.operands[0]), use_slot(inst.operands[1])
        d = def_slot(inst)
        if inst.pred in _ICMP_SIGNED:
            return (_ICMP_SIGNED[inst.pred], d, a, b)
        return (OP_ICMP_U, d, a, b, _ICMP_UNSIGNED[inst.pred])
    if isinstance(inst, FCmp):
        return (OP_FCMP, def_slot(inst), use_slot(inst.operands[0]),
                use_slot(inst.operands[1]), _FCMP_FNS[inst.pred])
    if isinstance(inst, Br):
        ti, copies, n = edge_target(inst.parent, inst.target)
        return (OP_BR, ti, copies, n)
    if isinstance(inst, CondBr):
        ti, tc, tn = edge_target(inst.parent, inst.if_true)
        fi, fc, fn = edge_target(inst.parent, inst.if_false)
        return (OP_CONDBR, use_slot(inst.condition), ti, tc, tn, fi, fc, fn)
    if isinstance(inst, Ret):
        return (OP_RET, use_slot(inst.value) if inst.value is not None else None)
    if isinstance(inst, Call):
        dest = None if inst.type.is_void() else def_slot(inst)
        return (OP_CALL, dest, dmod.callee_id(inst.callee),
                tuple(use_slot(a) for a in inst.args))
    if isinstance(inst, Select):
        c, a, b = (use_slot(o) for o in inst.operands)
        return (OP_SELECT, def_slot(inst), c, a, b)
    if isinstance(inst, Alloca):
        return (OP_ALLOCA, def_slot(inst), inst.size_bytes)
    if isinstance(inst, PtrToInt):
        return (OP_PTRTOINT, def_slot(inst), use_slot(inst.operands[0]))
    if isinstance(inst, IntToPtr):
        return (OP_INTTOPTR, def_slot(inst), use_slot(inst.operands[0]))
    if isinstance(inst, Cast):
        s = use_slot(inst.operands[0])
        d = def_slot(inst)
        if inst.opcode in ("trunc", "sext"):
            return (OP_WRAP, d, s, inst.type.bits)
        if inst.opcode == "zext":
            src_bits = inst.operands[0].type.bits
            return (OP_ZEXT, d, s, (1 << src_bits) - 1, inst.type.bits)
        if inst.opcode == "sitofp":
            return (OP_SITOFP, d, s)
        if inst.opcode == "fptosi":
            return (OP_FPTOSI, d, s)
        return (OP_RAISE, f"unknown cast {inst.opcode}")
    if isinstance(inst, Phi):
        return (OP_RAISE, "phi reached dispatch (must be at block head)")
    return (OP_RAISE, f"cannot execute {inst.render()}")
