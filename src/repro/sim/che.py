"""Che's approximation for LRU hit rates.

Given per-granule access probabilities (the "heat" vectors the hashmap
and memcached workloads build), an LRU cache of capacity ``C`` admits a
*characteristic time* ``T`` such that

    sum_i (1 - exp(-m_i * T)) = C

and granule ``i``'s hit rate is ``1 - exp(-m_i * T)`` (Che, Tung &
Wang, 2002).  This models what a real LRU does under a heavy-tailed
request stream far better than an ideal "hottest-K resident" cache: the
zipf tail continuously churns through the cache, evicting warm entries,
so aggregate hit rates are substantially lower — which is exactly the
refetch traffic behind the paper's I/O-amplification numbers (Fig. 13:
TrackFM still amplifies the working set 2.3x).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


def characteristic_time(masses: np.ndarray, capacity: int) -> float:
    """Solve Che's fixed point for the characteristic time T."""
    m = np.asarray(masses, dtype=np.float64)
    if m.ndim != 1 or len(m) == 0:
        raise WorkloadError("masses must be a non-empty 1-D array")
    if capacity <= 0:
        return 0.0
    if capacity >= len(m):
        return float("inf")
    total = m.sum()
    if total <= 0:
        raise WorkloadError("masses must have positive total")
    m = m / total

    def filled(t: float) -> float:
        return float(np.sum(-np.expm1(-m * t)))

    lo, hi = 0.0, 1.0
    while filled(hi) < capacity:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - degenerate distributions
            return hi
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if filled(mid) < capacity:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def lru_hit_rate(masses: np.ndarray, capacity: int) -> float:
    """Aggregate LRU hit rate of a request stream over its granules.

    ``masses[i]`` is the probability a request touches granule ``i``
    (they are normalized internally); ``capacity`` is how many granules
    fit in the cache.
    """
    m = np.asarray(masses, dtype=np.float64)
    if capacity <= 0 or len(m) == 0:
        return 0.0
    if capacity >= len(m):
        return 1.0
    total = m.sum()
    if total <= 0:
        return 0.0
    m = m / total
    t = characteristic_time(m, capacity)
    if t == float("inf"):
        return 1.0
    return float(np.sum(m * -np.expm1(-m * t)))


def per_granule_hit_rates(masses: np.ndarray, capacity: int) -> np.ndarray:
    """Per-granule hit probabilities under the same approximation."""
    m = np.asarray(masses, dtype=np.float64)
    if capacity <= 0 or len(m) == 0:
        return np.zeros_like(m)
    if capacity >= len(m):
        return np.ones_like(m)
    total = m.sum()
    if total <= 0:
        return np.zeros_like(m)
    norm = m / total
    t = characteristic_time(norm, capacity)
    if t == float("inf"):
        return np.ones_like(m)
    return -np.expm1(-norm * t)
