"""Seeded checksum codec for far-memory payload verification.

Two kinds of tags live here:

* :meth:`ChecksumCodec.checksum` — a seeded CRC-32 over real bytes.
  CRC-32 detects *every* single-bit flip regardless of the seed (the
  generator polynomial has more than one term), which is the property
  the hypothesis suite pins; the seed keys the tag so checksums from
  different deployments never validate against each other.
* :meth:`ChecksumCodec.object_checksum` — a 64-bit tag for a simulated
  object at a given writeback *version*.  The simulator does not move
  real payload bytes over the wire, so remote-copy state is modelled as
  ``(obj_id, version)`` and the tag is a splitmix64 hash of that pair;
  64 bits keeps accidental tag collisions out of the test universe.
"""

from __future__ import annotations

import zlib

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def flip_bit(payload: bytes, bit: int) -> bytes:
    """``payload`` with bit ``bit`` (0 = LSB of byte 0) flipped."""
    if not payload:
        raise ValueError("cannot flip a bit in an empty payload")
    bit %= len(payload) * 8
    byte_index, bit_index = divmod(bit, 8)
    out = bytearray(payload)
    out[byte_index] ^= 1 << bit_index
    return bytes(out)


class ChecksumCodec:
    """Seeded checksums for payload bytes and simulated object versions."""

    __slots__ = ("seed", "_crc_init")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed & _MASK64
        # CRC of the seed's own bytes keys the running CRC register.
        self._crc_init = zlib.crc32(self.seed.to_bytes(8, "little"))

    def checksum(self, payload: bytes) -> int:
        """Seeded CRC-32 of ``payload`` (32-bit unsigned)."""
        return zlib.crc32(payload, self._crc_init) & 0xFFFFFFFF

    def verify(self, payload: bytes, check: int) -> bool:
        return self.checksum(payload) == check

    def object_checksum(self, obj_id: int, version: int) -> int:
        """64-bit tag of simulated object state ``(obj_id, version)``."""
        return _splitmix64(self.seed ^ _splitmix64(((obj_id & _MASK64) << 20) ^ version))
