"""Integrity configuration, crash-point plans, and the CLI spec parser.

Mirrors the fault-plan plumbing in :mod:`repro.net.faults`: a frozen
config object, a ``parse_*_spec`` grammar for the ``--integrity`` CLI
knob, and a process-wide default that the backend factories consult so
harness-built runtimes pick verification up without constructor
changes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import RuntimeConfigError

__all__ = [
    "CrashPlan",
    "IntegrityConfig",
    "parse_integrity_spec",
    "default_integrity_config",
    "set_default_integrity_config",
    "installed_integrity_config",
]

#: Where a :class:`CrashPlan` pretends to die.
CRASH_KINDS = ("evacuator", "farnode")

#: Every key ``parse_integrity_spec`` accepts (enumerated in errors).
INTEGRITY_SPEC_KEYS = ("seed", "refetch", "verify", "crash")


@dataclass
class CrashPlan:
    """A deterministic crash point, clocked in evacuation-journal records.

    The crash fires exactly once, when the journal reaches
    ``at_record`` appended records (1-based).  ``kind`` picks the
    failure: an ``evacuator`` crash dies cleanly mid-sweep, a
    ``farnode`` crash additionally tears the in-flight object's remote
    copy (the node died while applying the write).
    """

    at_record: int
    kind: str = "evacuator"
    #: Set once the crash has been raised; never fires twice.
    fired: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.at_record < 1:
            raise RuntimeConfigError("crash at_record must be >= 1")
        if self.kind not in CRASH_KINDS:
            raise RuntimeConfigError(
                f"unknown crash kind {self.kind!r}; valid kinds: {', '.join(CRASH_KINDS)}"
            )


@dataclass(frozen=True)
class IntegrityConfig:
    """How a checker verifies, repairs, and (optionally) crashes.

    ``max_refetches`` bounds the repair loop per corrupted fetch —
    once exhausted the object is quarantined and
    :class:`~repro.errors.DataIntegrityError` raised.  ``verify_cycles``
    is charged per checksum verification (once per fetch, plus once per
    repair attempt).
    """

    enabled: bool = True
    seed: int = 0
    max_refetches: int = 2
    verify_cycles: float = 25.0
    crash_at_record: Optional[int] = None
    crash_kind: str = "evacuator"

    def __post_init__(self) -> None:
        if self.max_refetches < 0:
            raise RuntimeConfigError("max_refetches must be >= 0")
        if self.verify_cycles < 0:
            raise RuntimeConfigError("verify_cycles must be >= 0")
        if self.crash_at_record is not None and self.crash_at_record < 1:
            raise RuntimeConfigError("crash_at_record must be >= 1")
        if self.crash_kind not in CRASH_KINDS:
            raise RuntimeConfigError(
                f"unknown crash kind {self.crash_kind!r}; "
                f"valid kinds: {', '.join(CRASH_KINDS)}"
            )

    def crash_plan(self) -> Optional[CrashPlan]:
        """A fresh (unfired) crash plan, or None when no crash is set."""
        if self.crash_at_record is None:
            return None
        return CrashPlan(at_record=self.crash_at_record, kind=self.crash_kind)


def parse_integrity_spec(spec: str) -> Optional[IntegrityConfig]:
    """Parse the ``--integrity`` CLI knob into an :class:`IntegrityConfig`.

    Grammar::

        off | on | <key>=<value>[,<key>=<value>...]

    with keys ``seed=<int>``, ``refetch=<int>`` (repair budget),
    ``verify=<cycles>``, and ``crash=<record>[:<kind>]`` (deterministic
    crash injection).  ``off`` (or an empty spec) returns None.
    """
    spec = spec.strip().lower()
    if not spec or spec == "off":
        return None
    if spec == "on":
        return IntegrityConfig()
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise RuntimeConfigError(
                f"bad integrity spec part {part!r} (want key=value, 'on', or 'off')"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "refetch":
                kwargs["max_refetches"] = int(value)
            elif key == "verify":
                kwargs["verify_cycles"] = float(value)
            elif key == "crash":
                record, _, kind = value.partition(":")
                kwargs["crash_at_record"] = int(record)
                if kind:
                    kwargs["crash_kind"] = kind
            else:
                raise RuntimeConfigError(
                    f"unknown integrity spec key {key!r}; "
                    f"valid keys: {', '.join(INTEGRITY_SPEC_KEYS)}"
                )
        except ValueError as err:
            raise RuntimeConfigError(
                f"bad integrity spec value {part!r}: {err}"
            ) from err
    return IntegrityConfig(**kwargs)


# -- process-wide default config ----------------------------------------------

#: When set, ``make_tcp_backend``/``make_rdma_backend`` attach a fresh
#: :class:`~repro.integrity.IntegrityChecker` to every backend they
#: build — the hook behind the ``--integrity`` CLI knobs.
_DEFAULT_CONFIG: Optional[IntegrityConfig] = None


def default_integrity_config() -> Optional[IntegrityConfig]:
    return _DEFAULT_CONFIG


def set_default_integrity_config(config: Optional[IntegrityConfig]) -> None:
    global _DEFAULT_CONFIG
    _DEFAULT_CONFIG = config


@contextlib.contextmanager
def installed_integrity_config(config: Optional[IntegrityConfig]) -> Iterator[None]:
    """Temporarily install ``config`` as the process default."""
    previous = _DEFAULT_CONFIG
    set_default_integrity_config(config)
    try:
        yield
    finally:
        set_default_integrity_config(previous)
