"""The write-ahead evacuation journal.

Every dirty writeback is journaled write-ahead: an ``INTENT`` record
(the evacuator is about to move ``(obj, version)``), a ``PAYLOAD``
record (the bytes are durably staged — after this point the writeback
can always be re-driven), then — after the wire write — a ``COMMIT``.
A writeback abandoned before the wire write (deferral, rollback during
recovery) is closed with an ``ABORT``.

Replay is a pure fold: :func:`replay_state` reduces any record sequence
to the furthest stage reached per ``(obj, version)`` attempt.  The fold
is idempotent under re-application and monotone in prefix length —
the two properties the hypothesis suite pins, and what makes
:class:`~repro.integrity.RecoveryManager.recover` safe to run twice.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import JournalError

__all__ = ["RecordKind", "JournalRecord", "EvacuationJournal", "replay_state"]


class RecordKind(enum.Enum):
    INTENT = "intent"
    PAYLOAD = "payload"
    COMMIT = "commit"
    ABORT = "abort"


#: Stage progression per writeback attempt; higher rank wins the fold.
_RANK = {
    RecordKind.INTENT: 0,
    RecordKind.PAYLOAD: 1,
    RecordKind.COMMIT: 2,
    RecordKind.ABORT: 3,
}


@dataclass(frozen=True)
class JournalRecord:
    """One append-only journal entry."""

    seq: int
    kind: RecordKind
    obj_id: int
    version: int
    check: int = 0


def replay_state(
    records: Iterable[JournalRecord],
) -> Dict[Tuple[int, int], RecordKind]:
    """Furthest stage per ``(obj_id, version)`` writeback attempt.

    Pure and order-insensitive within an attempt (stages only advance),
    so replaying a prefix twice — or appending a duplicate of any
    record — yields exactly the same state.
    """
    state: Dict[Tuple[int, int], RecordKind] = {}
    for record in records:
        key = (record.obj_id, record.version)
        current = state.get(key)
        if current is None or _RANK[record.kind] > _RANK[current]:
            state[key] = record.kind
    return state


class EvacuationJournal:
    """Append-only record log for one backend's writebacks."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: List[JournalRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        return tuple(self._records)

    def append(
        self, kind: RecordKind, obj_id: int, version: int, check: int = 0
    ) -> JournalRecord:
        if obj_id < 0:
            raise JournalError(f"journal obj_id must be >= 0, got {obj_id}")
        if version < 1:
            raise JournalError(f"journal version must be >= 1, got {version}")
        record = JournalRecord(
            seq=len(self._records), kind=kind, obj_id=obj_id, version=version, check=check
        )
        self._records.append(record)
        return record

    def clear(self) -> None:
        self._records.clear()

    def state(self) -> Dict[Tuple[int, int], RecordKind]:
        """:func:`replay_state` over the whole log."""
        return replay_state(self._records)

    def latest_payload_version(self, obj_id: int) -> Optional[int]:
        """Newest version of ``obj_id`` with a durable ``PAYLOAD`` record.

        This is what a damaged remote copy can be re-driven to — the
        journal's staged bytes are the authoritative copy once a
        ``PAYLOAD`` record exists.
        """
        best: Optional[int] = None
        for record in self._records:
            if record.obj_id == obj_id and record.kind is RecordKind.PAYLOAD:
                if best is None or record.version > best:
                    best = record.version
        return best

    def objects(self) -> Tuple[int, ...]:
        """Distinct object ids in the log, in first-appearance order."""
        seen: Dict[int, None] = {}
        for record in self._records:
            seen.setdefault(record.obj_id, None)
        return tuple(seen)
