"""Fetch-time checksum verification with repair and quarantine.

The checker sits on a :class:`~repro.net.backends.RemoteBackend` and
models the remote copy of every object as ``(obj_id, version)`` plus a
damage map (which writebacks were torn / lost on the far node).  On
every verified fetch it walks the escalation ladder:

1. **verify** — charge ``verify_cycles`` and consult the deterministic
   data-fault schedule (``FaultSchedule.roll_fetch_payload``) plus the
   damage map;
2. **repair** — transmission faults (bitflip / stale_read) are repaired
   by re-fetching; remote-copy damage (torn_write / lost_writeback) is
   repaired by re-driving the writeback from the journal's durable
   ``PAYLOAD`` record, then re-fetching.  At most
   ``config.max_refetches`` attempts;
3. **quarantine** — exhausted budget (or no durable journal copy)
   quarantines the object and raises
   :class:`~repro.errors.DataIntegrityError`; every later touch raises
   immediately.  A corrupted run never returns silently wrong data;
4. **degrade** — the hybrid runtime catches the raise and falls back to
   its page tier (see ``repro.hybrid.runtime``).

Writebacks are journaled write-ahead (INTENT, PAYLOAD, wire write,
COMMIT); a :class:`~repro.integrity.CrashPlan` can kill the evacuator or
far node at an exact journal record count, which is what the recovery
chaos suite replays.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.errors import DataIntegrityError, JournalError, SimulatedCrashError
from repro.integrity.checksum import ChecksumCodec
from repro.integrity.config import CrashPlan, IntegrityConfig
from repro.integrity.journal import EvacuationJournal, RecordKind
from repro.trace.tracer import NULL_TRACER

__all__ = ["IntegrityChecker", "attach_integrity"]

#: Corruption kinds that damage the remote copy itself (repair needs a
#: journal re-drive, not just a re-fetch).
REMOTE_DAMAGE_KINDS = frozenset({"torn_write", "lost_writeback"})


class IntegrityChecker:
    """Per-backend verify → repair → quarantine state machine."""

    def __init__(
        self,
        config: Optional[IntegrityConfig] = None,
        link: Optional[object] = None,
        journal: Optional[EvacuationJournal] = None,
        metrics: Optional[object] = None,
        tracer: object = NULL_TRACER,
    ) -> None:
        self.config = config or IntegrityConfig()
        self.codec = ChecksumCodec(self.config.seed)
        #: The link whose fault schedule decides payload corruption;
        #: read dynamically so arming faults later still takes effect.
        self.link = link
        self.journal = journal if journal is not None else EvacuationJournal()
        #: Duck-typed Metrics (same convention as RemoteBackend.metrics).
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Version we expect the remote copy of each object to hold.
        self.versions: Dict[int, int] = {}
        #: Remote copies known damaged (kind per object).
        self.remote_damage: Dict[int, str] = {}
        #: Objects whose repair budget was exhausted.
        self.quarantined: Set[int] = set()
        self.crash_plan: Optional[CrashPlan] = self.config.crash_plan()
        #: Writebacks begun but not yet committed/aborted.
        self._pending: Dict[int, int] = {}
        #: Monotone per-object attempt counter (journal versions).
        self._version_counter: Dict[int, int] = {}

    # -- small helpers --------------------------------------------------------

    def _schedule(self) -> Optional[object]:
        link = self.link
        return None if link is None else getattr(link, "faults", None)

    def _roll_fetch(self) -> Optional[str]:
        schedule = self._schedule()
        return None if schedule is None else schedule.roll_fetch_payload()

    def _roll_evict(self) -> Optional[str]:
        schedule = self._schedule()
        return None if schedule is None else schedule.roll_evict_payload()

    def _now(self) -> float:
        metrics = self.metrics
        return metrics.cycles if metrics is not None else 0.0

    def _count(self, counter: str, n: int = 1) -> None:
        metrics = self.metrics
        if metrics is not None:
            setattr(metrics, counter, getattr(metrics, counter) + n)

    def expected_check(self, obj_id: int) -> int:
        """The checksum tag carried in metadata for ``obj_id``."""
        return self.codec.object_checksum(obj_id, self.versions.get(obj_id, 0))

    # -- fetch-time verification ----------------------------------------------

    def verify_fetch(
        self,
        obj_id: int,
        size_bytes: int,
        refetch: Callable[[], float],
        rewrite: Callable[[], float],
    ) -> float:
        """Verify one fetched payload; returns cycles charged.

        ``refetch`` / ``rewrite`` re-drive one payload over the wire
        (fetch / writeback direction) and return its cost; the backend
        supplies closures that go through its own retry machinery.
        Raises :class:`DataIntegrityError` on quarantine.
        """
        if obj_id in self.quarantined:
            raise DataIntegrityError(
                f"object {obj_id} is quarantined", obj_id=obj_id, kind="quarantined"
            )
        config = self.config
        cost = config.verify_cycles
        kind = self.remote_damage.get(obj_id)
        if kind is None:
            kind = self._roll_fetch()
        if kind is None:
            return cost
        # Detected: one count per corrupted fetch, however many repair
        # attempts follow (so detected == repaired + quarantined).
        self._count("corruptions_detected")
        self.tracer.corrupt(kind, obj_id, self._now())
        attempts = 0
        metrics = self.metrics
        while attempts < config.max_refetches:
            attempts += 1
            damage = self.remote_damage.get(obj_id)
            if damage is not None:
                payload_version = self.journal.latest_payload_version(obj_id)
                if payload_version is None:
                    # No durable copy to re-drive the writeback from.
                    break
                cost += rewrite()
                if metrics is not None:
                    metrics.bytes_evacuated += size_bytes
                self._count("journal_replays")
                self.tracer.journal("replay", obj_id, self._now())
                redamage = self._roll_evict()
                if redamage is not None:
                    # The re-driven writeback was itself corrupted.
                    self.remote_damage[obj_id] = redamage
                    continue
                del self.remote_damage[obj_id]
                self.versions[obj_id] = payload_version
            cost += refetch()
            if metrics is not None:
                metrics.remote_fetches += 1
                metrics.bytes_fetched += size_bytes
            cost += config.verify_cycles
            kind = self._roll_fetch()
            if kind is None:
                self._count("corruptions_repaired")
                self.tracer.repair(obj_id, attempts, self._now())
                return cost
            self.tracer.corrupt(kind, obj_id, self._now())
        self.quarantined.add(obj_id)
        self._count("quarantined_objects")
        self.tracer.corrupt("quarantine", obj_id, self._now())
        raise DataIntegrityError(
            f"object {obj_id} failed verification ({kind}) "
            f"after {attempts} repair attempts",
            obj_id=obj_id,
            kind=kind,
        )

    # -- write-ahead writeback protocol ---------------------------------------

    def _journal(self, kind: RecordKind, obj_id: int, version: int, check: int) -> None:
        self.journal.append(kind, obj_id, version, check)
        plan = self.crash_plan
        if plan is not None and not plan.fired and len(self.journal) >= plan.at_record:
            plan.fired = True
            if plan.kind == "farnode":
                # The far node died while applying this object's write.
                self.remote_damage[obj_id] = "torn_write"
            self.tracer.journal("crash", obj_id, self._now())
            raise SimulatedCrashError(
                f"injected {plan.kind} crash at journal record {len(self.journal)}"
            )

    def begin_writeback(self, obj_id: int) -> None:
        """Journal INTENT + PAYLOAD ahead of the wire write."""
        version = self._version_counter.get(obj_id, self.versions.get(obj_id, 0)) + 1
        self._version_counter[obj_id] = version
        check = self.codec.object_checksum(obj_id, version)
        self._pending[obj_id] = version
        self._journal(RecordKind.INTENT, obj_id, version, check)
        self._journal(RecordKind.PAYLOAD, obj_id, version, check)

    def finish_writeback(self, obj_id: int) -> None:
        """The wire write landed: roll its payload fate, journal COMMIT."""
        version = self._pending.pop(obj_id, None)
        if version is None:
            raise JournalError(f"finish_writeback({obj_id}) without begin_writeback")
        self.versions[obj_id] = version
        damage = self._roll_evict()
        if damage is not None:
            self.remote_damage[obj_id] = damage
        self._journal(
            RecordKind.COMMIT, obj_id, version, self.codec.object_checksum(obj_id, version)
        )

    def abort_writeback(self, obj_id: int) -> None:
        """The wire write never happened (deferral): journal ABORT."""
        version = self._pending.pop(obj_id, None)
        if version is None:
            return
        self._journal(RecordKind.ABORT, obj_id, version, 0)


def attach_integrity(
    backend: object, config: Optional[IntegrityConfig] = None
) -> IntegrityChecker:
    """Build a checker for ``backend`` and install it as ``backend.integrity``.

    Wires the backend's link (for the data-fault schedule), metrics and
    tracer into the checker; safe to call on a backend whose metrics
    are attached later (the pool re-wires them, same as
    ``backend.metrics``).
    """
    checker = IntegrityChecker(
        config=config,
        link=getattr(backend, "link", None),
        metrics=getattr(backend, "metrics", None),
        tracer=getattr(backend, "tracer", NULL_TRACER),
    )
    backend.integrity = checker
    return checker
