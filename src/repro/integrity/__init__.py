"""repro.integrity — end-to-end data integrity for the far-memory tier.

The correctness half of the resilience story (``repro.net.faults`` is
the availability half).  Three pieces:

* a seeded :class:`ChecksumCodec` plus fetch-time verification with
  bounded repair and quarantine (:class:`IntegrityChecker`), driven by
  the deterministic data faults a
  :class:`~repro.net.faults.FaultPlan` can now inject (``bitflip``,
  ``torn_write``, ``lost_writeback``, ``stale_read``);
* a write-ahead :class:`EvacuationJournal` (INTENT / PAYLOAD / COMMIT /
  ABORT records) that every dirty writeback follows once integrity is
  enabled;
* deterministic crash injection (:class:`CrashPlan`) and a
  :class:`RecoveryManager` that replays committed writebacks, rolls
  back torn ones, and rebuilds pool ↔ residency coherence, so a
  recovered run computes values identical to a crash-free run.

Enable per runtime with ``runtime.enable_integrity()``, process-wide
with :func:`installed_integrity_config` (the ``--integrity`` CLI knob).
The escalation ladder is **verify → repair → quarantine → degrade**;
see ``docs/resilience.md``.
"""

from repro.integrity.checksum import ChecksumCodec, flip_bit
from repro.integrity.config import (
    CrashPlan,
    IntegrityConfig,
    default_integrity_config,
    installed_integrity_config,
    parse_integrity_spec,
    set_default_integrity_config,
)
from repro.integrity.checker import IntegrityChecker, attach_integrity
from repro.integrity.journal import (
    EvacuationJournal,
    JournalRecord,
    RecordKind,
    replay_state,
)
from repro.integrity.recovery import RecoveryManager, RecoveryReport

__all__ = [
    "ChecksumCodec",
    "CrashPlan",
    "EvacuationJournal",
    "IntegrityChecker",
    "IntegrityConfig",
    "JournalRecord",
    "RecordKind",
    "RecoveryManager",
    "RecoveryReport",
    "attach_integrity",
    "default_integrity_config",
    "flip_bit",
    "installed_integrity_config",
    "parse_integrity_spec",
    "replay_state",
    "set_default_integrity_config",
]
