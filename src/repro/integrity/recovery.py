"""Crash-consistent recovery from the evacuation journal.

After a :class:`~repro.errors.SimulatedCrashError` (or at any point —
recovery is idempotent), :class:`RecoveryManager.recover` folds the
journal with :func:`~repro.integrity.journal.replay_state` and repairs
the world to what a crash-free run would have produced:

* **redo** — writebacks with a durable ``PAYLOAD`` but no ``COMMIT``
  are re-driven over the wire and committed; committed writebacks whose
  remote copy is known damaged (a far-node crash tore them) are
  re-driven too;
* **undo** — writebacks that never reached ``PAYLOAD`` (intent-only)
  are rolled back: the object is reinstated as locally resident and
  dirty, and the attempt is closed with an ``ABORT`` record;
* **rebuild** — a pool-supplied ``reconcile`` callback then rebuilds
  metadata-word ↔ residency coherence (which also rebuilds the TrackFM
  state table, since it aliases the pool's metadata array).

Running recover twice yields the same state as running it once: redos
are committed (so the second pass sees ``COMMIT`` and intact remote
copies), undos append ``ABORT`` (terminal), and reinstating an
already-resident object is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import RuntimeConfigError
from repro.integrity.checker import IntegrityChecker
from repro.integrity.journal import RecordKind

__all__ = ["RecoveryManager", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover` pass did."""

    #: Uncommitted (PAYLOAD-stage) writebacks re-driven and committed.
    replayed: int = 0
    #: Intent-only writebacks rolled back (object reinstated dirty).
    rolled_back: int = 0
    #: Committed writebacks whose damaged remote copy was re-driven.
    repaired_remote: int = 0
    #: Wire + reinstatement cycles charged during recovery.
    cycles: float = 0.0

    @property
    def total_actions(self) -> int:
        return self.replayed + self.rolled_back + self.repaired_remote

    def merge(self, other: "RecoveryReport") -> None:
        self.replayed += other.replayed
        self.rolled_back += other.rolled_back
        self.repaired_remote += other.repaired_remote
        self.cycles += other.cycles


class RecoveryManager:
    """Replays / rolls back journaled writebacks and rebuilds residency."""

    def __init__(
        self,
        checker: IntegrityChecker,
        backend: object,
        object_size: int,
        writeback_depth: int = 8,
        reinstate: Optional[Callable[[int], float]] = None,
        reconcile: Optional[Callable[[], None]] = None,
    ) -> None:
        self.checker = checker
        self.backend = backend
        self.object_size = object_size
        self.writeback_depth = writeback_depth
        #: Makes ``obj_id`` locally resident + dirty again (undo path);
        #: returns cycles spent displacing victims, if any.
        self.reinstate = reinstate
        #: Rebuilds metadata ↔ residency coherence after replay.
        self.reconcile = reconcile

    @classmethod
    def for_pool(cls, pool: object) -> "RecoveryManager":
        """A manager over an :class:`~repro.aifm.pool.ObjectPool`."""
        checker = pool.integrity
        if checker is None:
            raise RuntimeConfigError(
                "pool has no integrity checker; call enable_integrity() first"
            )
        return cls(
            checker,
            pool.backend,
            pool.object_size,
            writeback_depth=pool.evacuator.writeback_depth,
            reinstate=pool.reinstate_dirty,
            reconcile=pool.reconcile_residency,
        )

    def _rewrite(self) -> float:
        """Re-drive one writeback payload over the wire."""
        return self.backend.payload_rewrite(self.object_size, depth=self.writeback_depth)

    def recover(self) -> RecoveryReport:
        """One idempotent recovery pass; returns what it did."""
        checker = self.checker
        journal = checker.journal
        metrics = checker.metrics
        state = journal.state()
        report = RecoveryReport()
        # Wire-rewrite cycles are accounted here; reinstate() flows its
        # own cycles into metrics (via the evacuator), so only the
        # rewrites may be added to metrics.cycles below.
        wire_cycles = 0.0
        for obj_id in journal.objects():
            version = max(v for (o, v) in state if o == obj_id)
            stage = state[(obj_id, version)]
            if stage is RecordKind.COMMIT:
                if checker.remote_damage.get(obj_id) is None:
                    continue
                # Committed but the remote copy is damaged: re-drive it.
                cost = self._rewrite()
                report.cycles += cost
                wire_cycles += cost
                del checker.remote_damage[obj_id]
                checker.versions[obj_id] = version
                checker._count("journal_replays")
                checker.tracer.journal("replay", obj_id, checker._now())
                report.repaired_remote += 1
            elif stage is RecordKind.PAYLOAD:
                # Durable but uncommitted: redo, then commit.
                cost = self._rewrite()
                report.cycles += cost
                wire_cycles += cost
                checker.remote_damage.pop(obj_id, None)
                checker.versions[obj_id] = version
                journal.append(
                    RecordKind.COMMIT,
                    obj_id,
                    version,
                    checker.codec.object_checksum(obj_id, version),
                )
                checker._count("journal_replays")
                checker.tracer.journal("replay", obj_id, checker._now())
                report.replayed += 1
            else:
                # INTENT (roll back now) or ABORT (already rolled back /
                # deferred); reinstating twice is a no-op.
                if self.reinstate is not None:
                    report.cycles += self.reinstate(obj_id)
                if stage is RecordKind.INTENT:
                    journal.append(RecordKind.ABORT, obj_id, version, 0)
                    checker.tracer.journal("rollback", obj_id, checker._now())
                    report.rolled_back += 1
        checker._pending.clear()
        if self.reconcile is not None:
            self.reconcile()
        if metrics is not None and wire_cycles:
            metrics.cycles += wire_cycles
        return report
