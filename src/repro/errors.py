"""Exception hierarchy for the TrackFM reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: verifier failures, bad builder usage, type errors."""


class IRTypeError(IRError):
    """An IR value was used at an incompatible type."""


class IRVerifyError(IRError):
    """The IR verifier found a structural violation."""


class InterpError(ReproError):
    """The IR interpreter hit a runtime fault (bad memory, missing func)."""


class SegmentationFault(InterpError):
    """An access touched memory the interpreter does not map.

    In the paper this is the general protection fault raised by the CPU
    when a non-canonical (TrackFM) pointer escapes to an unguarded
    load/store; we reproduce the same failure mode.
    """


class AnalysisError(ReproError):
    """A compiler analysis was queried on IR it cannot handle."""


class PassError(ReproError):
    """A compiler pass failed or was scheduled incorrectly."""


class RuntimeConfigError(ReproError):
    """A far-memory runtime was configured with invalid parameters."""


class OutOfMemoryError(ReproError):
    """An allocator ran out of (simulated) memory."""


class RemoteBackendError(ReproError):
    """The simulated remote node / network backend failed a request."""


class TransientNetworkError(RemoteBackendError):
    """One network message was lost (drop, remote pause window).

    Raised by a fault-injected :class:`~repro.net.link.NetworkLink` for a
    single message; a :class:`~repro.net.faults.RetryPolicy` on the
    backend absorbs it.  ``kind`` says why ("drop" or "pause") and
    ``message_index`` pins the position in the deterministic schedule.
    """

    def __init__(self, msg: str, kind: str = "drop", message_index: int = -1):
        super().__init__(msg)
        self.kind = kind
        self.message_index = message_index


class FarMemoryUnavailableError(RemoteBackendError):
    """The remote tier is unreachable after retries / the breaker opened.

    This is the error applications see: transient faults are retried
    away below it, so reaching here means the far-memory node is down
    for real.  Runtimes with a degraded-mode hook swallow it and serve
    locally; otherwise it surfaces through the guard to the program.
    """


class DataIntegrityError(RemoteBackendError):
    """An object's payload failed checksum verification beyond repair.

    Raised by the :class:`~repro.integrity.IntegrityChecker` after the
    bounded re-fetch/re-write repair budget is exhausted (or no durable
    journal copy exists to re-drive a damaged writeback from).  The
    object is *quarantined* first, so a corrupted run raises instead of
    ever returning silently wrong data.  ``obj_id`` names the granule
    and ``kind`` the corruption that stuck ("bitflip", "torn_write",
    "lost_writeback", "stale_read", or "quarantined" on later touches).
    """

    def __init__(self, msg: str, obj_id: int = -1, kind: str = "corrupt"):
        super().__init__(msg)
        self.obj_id = obj_id
        self.kind = kind


class SimulatedCrashError(ReproError):
    """A deterministic crash point fired (evacuator / far-node crash).

    Injected by :class:`~repro.integrity.CrashPlan` at an exact
    evacuation-journal record count; the chaos harness catches it, runs
    :class:`~repro.integrity.RecoveryManager`, and resumes.
    """


class JournalError(ReproError):
    """The evacuation journal was used inconsistently."""


class PointerError(ReproError):
    """Invalid TrackFM pointer arithmetic or decoding."""


class EvacuationError(ReproError):
    """The evacuator was asked to evict a pinned or in-scope object."""


class WorkloadError(ReproError):
    """A workload generator was configured inconsistently."""


class BenchError(ReproError):
    """A benchmark harness failure (bad sweep spec, missing series)."""


class TraceError(ReproError):
    """Trace-layer misuse (bad histogram config, unknown workload/runtime)."""
