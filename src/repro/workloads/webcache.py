"""Web-cache trace: a Zipf request trace replayed through the serving layer.

Unlike the other workloads — which replay an access stream through one
runtime — this one exercises the full `repro.serve` stack: seeded
open-loop traffic (`TrafficConfig`), consistent-hash placement, per-shard
runtimes, tenant quotas, and the discrete-event queueing simulation.
The workload object is just deterministic configuration; :meth:`run`
builds a fresh cluster each call so runs never share mutable state.

The observable result is the serving report's ``completions_fingerprint``
(order, value, and shard of every completion folded into one digest),
which stands in for the program "value" in cross-configuration
comparisons, plus the merged :class:`~repro.sim.metrics.Metrics` and
latency percentiles the ablation scorer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from typing import TYPE_CHECKING

from repro.net.faults import FaultPlan

if TYPE_CHECKING:  # real imports happen lazily inside the methods:
    # `repro.serve.traffic` imports this package for its Zipf generator,
    # so a module-level import here would close an import cycle and make
    # ``import repro.serve`` order-dependent.
    from repro.serve.cluster import ClusterConfig
    from repro.serve.simulation import ChaosAction, ServingReport
    from repro.serve.traffic import TrafficConfig


@dataclass(frozen=True)
class WebCacheConfig:
    """Sizing of one web-cache serving run (all defaults CI-sized)."""

    n_keys: int = 512
    clients: int = 32
    requests_per_client: int = 24
    zipf_skew: float = 1.05
    tenants: int = 4
    n_shards: int = 3
    object_size: int = 256
    #: Two resident objects per shard (64 key slots) against a touched
    #: working set several times larger — residency is fought over,
    #: which is what makes the quota knob and fault plans visible.
    local_memory: int = 512
    #: Per-tenant residency budget (one object); ``None`` disables quotas.
    tenant_quota_bytes: Optional[int] = 256
    write_fraction: float = 0.25
    mean_interarrival_cycles: float = 400_000.0
    seed: int = 7


class WebCacheWorkload:
    """Replay one seeded Zipf trace through a sharded cluster."""

    name = "webcache"

    def __init__(self, config: WebCacheConfig = WebCacheConfig()) -> None:
        self.config = config

    def traffic_config(self) -> "TrafficConfig":
        from repro.serve.traffic import TrafficConfig

        cfg = self.config
        return TrafficConfig(
            clients=cfg.clients,
            requests_per_client=cfg.requests_per_client,
            n_keys=cfg.n_keys,
            zipf_skew=cfg.zipf_skew,
            mean_interarrival_cycles=cfg.mean_interarrival_cycles,
            write_fraction=cfg.write_fraction,
            tenants=cfg.tenants,
            seed=cfg.seed,
        )

    def cluster_config(
        self,
        runtime: str,
        fault_plan: Optional[FaultPlan] = None,
        quotas: bool = True,
        replication: int = 1,
    ) -> "ClusterConfig":
        from repro.serve.cluster import ClusterConfig

        cfg = self.config
        return ClusterConfig(
            n_shards=cfg.n_shards,
            n_keys=cfg.n_keys,
            runtime=runtime,
            object_size=cfg.object_size,
            local_memory=cfg.local_memory,
            tenant_quota_bytes=cfg.tenant_quota_bytes if quotas else None,
            seed=cfg.seed,
            fault_plan=fault_plan,
            replication=replication,
        )

    def run(
        self,
        runtime: str = "aifm",
        fault_plan: Optional[FaultPlan] = None,
        quotas: bool = True,
        chaos: Sequence["ChaosAction"] = (),
        replication: int = 1,
    ) -> "ServingReport":
        from repro.serve.cluster import ShardedCluster
        from repro.serve.simulation import ServingSimulation
        from repro.serve.traffic import generate_schedule

        schedule = generate_schedule(self.traffic_config())
        cluster = ShardedCluster(
            self.cluster_config(runtime, fault_plan, quotas, replication)
        )
        return ServingSimulation(cluster, schedule, chaos).run()

    def value(self, runtime: str = "aifm") -> int:
        """The fault-free run's completions fingerprint (pure in config)."""
        return self.run(runtime=runtime).completions_fingerprint

    def report_dict(self, **kwargs) -> Dict[str, object]:
        return self.run(**kwargs).to_dict()

    def with_seed(self, seed: int) -> "WebCacheWorkload":
        return WebCacheWorkload(replace(self.config, seed=seed))
