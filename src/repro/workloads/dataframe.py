"""A small columnar dataframe substrate.

The paper's analytics application "builds on a custom C++ dataframe
library" (ported to C for NOELLE's sake).  This module is our
equivalent substrate: typed columns, sequential scans, filters,
element-wise combinations and group-by aggregations.  It serves two
masters:

* the examples use it as a *real* in-memory dataframe (columns carry
  numpy arrays and the operations compute actual results);
* the benchmarks use the *access plans* each operation reports — the
  sequence of (pattern, element count, element size, loop entries)
  tuples the far-memory cost models consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import WorkloadError


class AccessPattern(enum.Enum):
    """The two loop shapes the analytics app exhibits (§4.5)."""

    #: Long sequential column scan: high density, chunk-friendly.
    SEQUENTIAL = "sequential"
    #: Many short loops over small row collections: chunk-hostile.
    SHORT_LOOPS = "short_loops"


@dataclass(frozen=True)
class AccessPlan:
    """One operation's memory behaviour, as the compiler would see it."""

    pattern: AccessPattern
    n_elems: int
    elem_size: int
    #: Loop entries (1 for a scan; the group count for aggregations).
    entries: int = 1
    #: Writes (projections/materializations) vs reads (scans/aggs).
    is_write: bool = False

    @property
    def iterations_per_entry(self) -> float:
        return self.n_elems / max(self.entries, 1)


class Column:
    """A typed column; values optional (shape-only for benchmarks)."""

    def __init__(
        self,
        name: str,
        length: int,
        elem_size: int = 8,
        values: Optional[np.ndarray] = None,
    ) -> None:
        if length <= 0 or elem_size <= 0:
            raise WorkloadError("column length and element size must be positive")
        if values is not None and len(values) != length:
            raise WorkloadError(f"column {name}: values length != {length}")
        self.name = name
        self.length = length
        self.elem_size = elem_size
        self.values = values

    @property
    def nbytes(self) -> int:
        return self.length * self.elem_size

    def _require_values(self) -> np.ndarray:
        if self.values is None:
            raise WorkloadError(f"column {self.name} is shape-only (no values)")
        return self.values


class DataFrame:
    """Columns plus an access-plan log of every operation performed."""

    def __init__(self, columns: Optional[List[Column]] = None) -> None:
        self._columns: Dict[str, Column] = {}
        self.plans: List[AccessPlan] = []
        for col in columns or []:
            self.add_column(col)

    def add_column(self, col: Column) -> None:
        if col.name in self._columns:
            raise WorkloadError(f"duplicate column {col.name}")
        if self._columns:
            first = next(iter(self._columns.values()))
            if col.length != first.length:
                raise WorkloadError("all columns must share a length")
        self._columns[col.name] = col

    def column(self, name: str) -> Column:
        col = self._columns.get(name)
        if col is None:
            raise WorkloadError(f"no column {name}")
        return col

    def column_names(self) -> List[str]:
        return list(self._columns.keys())

    @property
    def n_rows(self) -> int:
        if not self._columns:
            return 0
        return next(iter(self._columns.values())).length

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self._columns.values())

    # -- operations --------------------------------------------------------

    def _log(self, plan: AccessPlan) -> AccessPlan:
        self.plans.append(plan)
        return plan

    def scan_sum(self, name: str) -> float:
        """Sum a column (sequential scan)."""
        col = self.column(name)
        self._log(AccessPlan(AccessPattern.SEQUENTIAL, col.length, col.elem_size))
        if col.values is None:
            return 0.0
        return float(np.sum(col._require_values()))

    def scan_mean(self, name: str) -> float:
        col = self.column(name)
        self._log(AccessPlan(AccessPattern.SEQUENTIAL, col.length, col.elem_size))
        if col.values is None:
            return 0.0
        return float(np.mean(col._require_values()))

    def filter_count(self, name: str, predicate: Callable[[np.ndarray], np.ndarray]) -> int:
        """Count rows matching a predicate (sequential scan)."""
        col = self.column(name)
        self._log(AccessPlan(AccessPattern.SEQUENTIAL, col.length, col.elem_size))
        if col.values is None:
            return 0
        return int(np.count_nonzero(predicate(col._require_values())))

    def combine(self, a: str, b: str, out: str, fn: Callable) -> Column:
        """Element-wise combination of two columns into a new one."""
        ca, cb = self.column(a), self.column(b)
        self._log(AccessPlan(AccessPattern.SEQUENTIAL, ca.length, ca.elem_size))
        self._log(AccessPlan(AccessPattern.SEQUENTIAL, cb.length, cb.elem_size))
        self._log(
            AccessPlan(
                AccessPattern.SEQUENTIAL, ca.length, ca.elem_size, is_write=True
            )
        )
        values = None
        if ca.values is not None and cb.values is not None:
            values = fn(ca.values, cb.values)
        col = Column(out, ca.length, ca.elem_size, values)
        self.add_column(col)
        return col

    def groupby_agg(
        self,
        key: str,
        value: str,
        n_groups: int,
        agg: str = "mean",
    ) -> Dict[int, float]:
        """Group rows by a key column and aggregate a value column.

        The aggregation pass iterates each group's (small) row
        collection in its own loop — the low-object-density pattern
        that makes indiscriminate chunking lose (Fig. 15).
        """
        ck, cv = self.column(key), self.column(value)
        if n_groups <= 0:
            raise WorkloadError("n_groups must be positive")
        # Key scan to build group membership, then per-group loops.
        self._log(AccessPlan(AccessPattern.SEQUENTIAL, ck.length, ck.elem_size))
        self._log(
            AccessPlan(
                AccessPattern.SHORT_LOOPS,
                cv.length,
                cv.elem_size,
                entries=n_groups,
            )
        )
        if ck.values is None or cv.values is None:
            return {}
        keys = ck._require_values().astype(np.int64) % n_groups
        out: Dict[int, float] = {}
        for g in range(n_groups):
            members = cv._require_values()[keys == g]
            if len(members) == 0:
                out[g] = 0.0
            elif agg == "mean":
                out[g] = float(np.mean(members))
            elif agg == "sum":
                out[g] = float(np.sum(members))
            elif agg == "max":
                out[g] = float(np.max(members))
            else:
                raise WorkloadError(f"unknown aggregation {agg!r}")
        return out

    def reset_plans(self) -> List[AccessPlan]:
        """Return and clear the logged access plans."""
        plans, self.plans = self.plans, []
        return plans
