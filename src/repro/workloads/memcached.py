"""memcached under a USR-style GET workload (§4.5, Fig. 16).

The paper transforms memcached 1.2.7 with TrackFM: 12 GB of key/value
pairs sized per the USR distribution (small keys, small values), 100 M
zipf-distributed GETs, 1 GB local memory, sweeping the zipf skew from
1.0 to 1.3.  Three behaviours drive Fig. 16:

* at low skew, I/O amplification dominates and TrackFM's small objects
  beat Fastswap's 4 KB pages (~1.7x);
* as skew rises, Fastswap's page faults amortize over hot pages and it
  converges toward TrackFM (whose fast-path guards are *not* amortized);
* memcached's **slab allocator** batches small items into large
  contiguous slabs, mixing hot and cold items within one object — the
  §5 observation that slabs limit how much I/O amplification TrackFM
  can recover.

Each GET costs a fixed request-path overhead (client/server networking
and protocol parsing — what puts the paper's all-local line at ~24
KOps/s) plus two memory dependencies: the hash-table bucket and the
item itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS, GuardKind
from repro.net.backends import make_rdma_backend, make_tcp_backend
from repro.sim.metrics import Metrics
from repro.units import BASE_PAGE, is_power_of_two

#: Request-path cycles per GET (network + protocol), calibrated so the
#: all-local throughput lands near the paper's ~24 KOps/s.
GET_BASE_CYCLES = 98_000.0

#: USR-style item sizes (key+value+item header), bytes : probability.
USR_ITEM_SIZES = ((64, 0.60), (128, 0.25), (256, 0.10), (512, 0.05))


@dataclass
class MemcachedResult:
    cycles: float
    metrics: Metrics
    n_ops: int

    def throughput_kops(self, cpu_hz: float = 2.4e9) -> float:
        """KOps/s, Fig. 16a's metric."""
        if self.cycles <= 0:
            return 0.0
        return self.n_ops / (self.cycles / cpu_hz) / 1e3

    def data_transferred_gb(self) -> float:
        """Fig. 16c's metric."""
        return self.metrics.total_bytes_transferred / (1 << 30)


@dataclass
class MemcachedWorkload:
    """One memcached configuration (sizes already scaled)."""

    working_set: int
    n_keys: int
    n_ops: int
    skew: float = 1.02
    #: Hash-table entry bytes (pointer-sized buckets).
    bucket_size: int = 8
    seed: int = 11
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if min(self.working_set, self.n_keys, self.n_ops) <= 0:
            raise WorkloadError("sizes must be positive")
        rng = np.random.default_rng(self.seed)
        sizes = np.array([s for s, _ in USR_ITEM_SIZES])
        probs = np.array([p for _, p in USR_ITEM_SIZES])
        # Draw item sizes, then scale the count so total bytes ~= WSS.
        mean_size = float((sizes * probs).sum())
        n_items = max(1, int(self.working_set / mean_size))
        self.n_items = min(n_items, self.n_keys) if self.n_keys else n_items
        self._item_sizes = rng.choice(sizes, size=self.n_items, p=probs)
        # Slab allocation: items are laid out per size class in
        # allocation (key) order — hot and cold items interleave.
        self._item_offsets = np.zeros(self.n_items, dtype=np.int64)
        cursor = 0
        for cls in sizes:
            mask = self._item_sizes == cls
            count = int(mask.sum())
            self._item_offsets[mask] = cursor + np.arange(count) * cls
            cursor += count * int(cls)
        self.items_bytes = int(cursor)
        self.buckets_bytes = self.n_items * self.bucket_size
        self._heat_cache: Dict[int, np.ndarray] = {}

    # -- heat over granules ---------------------------------------------------

    def _granule_heat(self, granule: int) -> np.ndarray:
        """Per-granule zipf mass (buckets + items), sorted descending."""
        if not is_power_of_two(granule):
            raise WorkloadError("granule must be a power of two")
        cached = self._heat_cache.get(granule)
        if cached is not None:
            return cached
        n = self.n_items
        ranks = np.arange(1, n + 1, dtype=np.float64)
        mass = ranks ** (-self.skew)
        mass /= mass.sum()
        # Keys are assigned to ranks via a fixed permutation (hashing).
        rng = np.random.default_rng(self.seed + 1)
        key_of_rank = rng.permutation(n)
        # Bucket region granules.
        bucket_gran = (key_of_rank.astype(np.int64) * self.bucket_size) // granule
        # Item region granules (offset past the bucket region).
        item_gran = (self.buckets_bytes + self._item_offsets[key_of_rank]) // granule
        total_granules = int(max(bucket_gran.max(), item_gran.max())) + 1
        heat = np.zeros(total_granules, dtype=np.float64)
        # Each GET touches its bucket and its item with the same mass.
        np.add.at(heat, bucket_gran, mass * 0.5)
        np.add.at(heat, item_gran, mass * 0.5)
        heat[::-1].sort()
        self._heat_cache[granule] = heat
        return heat

    def hit_rate(self, granule: int, cache_granules: int) -> float:
        """Steady-state LRU hit rate (Che's approximation)."""
        from repro.sim.che import lru_hit_rate

        heat = self._granule_heat(granule)
        return lru_hit_rate(heat, cache_granules)

    def _region_heat(self, granule: int, region: str) -> np.ndarray:
        """Heat over one region's granules only (hybrid placement)."""
        n = self.n_items
        ranks = np.arange(1, n + 1, dtype=np.float64)
        mass = ranks ** (-self.skew)
        mass /= mass.sum()
        rng = np.random.default_rng(self.seed + 1)
        key_of_rank = rng.permutation(n)
        if region == "buckets":
            gran = (key_of_rank.astype(np.int64) * self.bucket_size) // granule
        elif region == "items":
            gran = self._item_offsets[key_of_rank] // granule
        else:
            raise WorkloadError(f"unknown region {region!r}")
        heat = np.zeros(int(gran.max()) + 1, dtype=np.float64)
        np.add.at(heat, gran, mass)
        return heat

    def region_hit_rate(self, granule: int, region: str, cache_granules: int) -> float:
        """Hit rate of one region under its own dedicated cache."""
        from repro.sim.che import lru_hit_rate

        return lru_hit_rate(self._region_heat(granule, region), cache_granules)

    def _mean_item_size(self) -> float:
        return float(self._item_sizes.mean())

    # -- system models --------------------------------------------------------

    def run_trackfm(self, object_size: int, local_memory: int) -> MemcachedResult:
        c = self.costs
        metrics = Metrics()
        link = make_tcp_backend().link
        capacity = max(1, local_memory // object_size)
        hr = self.hit_rate(object_size, capacity)
        # Two memory dependencies per GET; each hits/misses with the
        # aggregate rate.
        deps = 2 * self.n_ops
        hits = int(round(deps * hr))
        misses = deps - hits
        cycles = self.n_ops * GET_BASE_CYCLES
        cycles += hits * (c.local_access + c.fast_guard(AccessKind.READ, cached=True))
        cycles += misses * (
            c.local_access
            + c.slow_guard_local(AccessKind.READ, cached=False)
            + link.transfer_cycles(object_size)
        )
        # memcached GETs write LRU-list bookkeeping into the item, so
        # displaced objects are dirty and must be written back.
        cycles += misses * link.wire_cycles(object_size) * 0.25
        metrics.bytes_evacuated += misses * object_size
        metrics.count_guard(GuardKind.FAST, hits)
        metrics.count_guard(GuardKind.SLOW, misses)
        metrics.remote_fetches += misses
        metrics.bytes_fetched += misses * object_size
        metrics.evictions += misses
        metrics.accesses = deps
        metrics.cycles = cycles
        return MemcachedResult(cycles, metrics, self.n_ops)

    def run_fastswap(self, local_memory: int, page_size: int = BASE_PAGE) -> MemcachedResult:
        c = self.costs
        metrics = Metrics()
        capacity = max(1, local_memory // page_size)
        hr = self.hit_rate(page_size, capacity)
        deps = 2 * self.n_ops
        hits = int(round(deps * hr))
        misses = deps - hits
        cycles = self.n_ops * GET_BASE_CYCLES
        cycles += deps * c.local_access
        cycles += misses * (c.fastswap_fault(AccessKind.READ, remote=True) + 2_000.0)
        # GETs dirty the pages (LRU bookkeeping), so reclaim must swap
        # them out: synchronous share of the writeback wire time.
        link = make_rdma_backend().link
        cycles += misses * link.wire_cycles(page_size) * 0.25
        metrics.bytes_evacuated += misses * page_size
        metrics.major_faults += misses
        metrics.remote_fetches += misses
        metrics.bytes_fetched += misses * page_size
        metrics.evictions += misses
        metrics.accesses = deps
        metrics.cycles = cycles
        return MemcachedResult(cycles, metrics, self.n_ops)

    def run_hybrid(
        self,
        object_size: int,
        local_memory: int,
        page_size: int = BASE_PAGE,
    ) -> MemcachedResult:
        """The §5 hybrid: bucket array on kernel pages, items on objects.

        The bucket array is dense (every byte of a hot page is a hot
        bucket) and intensely reused — ideal for pages, whose hits cost
        nothing.  Items are sparse and fine-grained — ideal for small
        objects.  Local memory is split proportionally to each region's
        footprint.
        """
        c = self.costs
        metrics = Metrics()
        tcp = make_tcp_backend().link
        # Placement policy: the bucket array is dense (every byte of a
        # cached page is a useful bucket), so it gets memory first — up
        # to its full footprint or half the budget; items take the rest.
        bucket_local = max(
            page_size, min(self.buckets_bytes, local_memory // 2)
        )
        item_local = max(object_size, local_memory - bucket_local)

        bucket_hr = self.region_hit_rate(
            page_size, "buckets", max(1, bucket_local // page_size)
        )
        item_hr = self.region_hit_rate(
            object_size, "items", max(1, item_local // object_size)
        )
        bucket_misses = int(round(self.n_ops * (1.0 - bucket_hr)))
        item_misses = int(round(self.n_ops * (1.0 - item_hr)))
        item_hits = self.n_ops - item_misses

        cycles = self.n_ops * GET_BASE_CYCLES + 2 * self.n_ops * c.local_access
        # Bucket side: unguarded; faults only on misses.
        cycles += bucket_misses * (c.fastswap_fault(AccessKind.READ, remote=True) + 2_000.0)
        metrics.major_faults += bucket_misses
        metrics.bytes_fetched += bucket_misses * page_size
        # Item side: guarded objects.
        cycles += item_hits * c.fast_guard(AccessKind.READ, cached=True)
        cycles += item_misses * (
            c.slow_guard_local(AccessKind.READ, cached=False)
            + tcp.transfer_cycles(object_size)
        )
        cycles += item_misses * tcp.wire_cycles(object_size) * 0.25
        metrics.count_guard(GuardKind.FAST, item_hits)
        metrics.count_guard(GuardKind.SLOW, item_misses)
        metrics.bytes_fetched += item_misses * object_size
        metrics.bytes_evacuated += item_misses * object_size
        metrics.remote_fetches += bucket_misses + item_misses
        metrics.evictions += bucket_misses + item_misses
        metrics.accesses = 2 * self.n_ops
        metrics.cycles = cycles
        return MemcachedResult(cycles, metrics, self.n_ops)

    def run_local(self) -> MemcachedResult:
        c = self.costs
        metrics = Metrics()
        deps = 2 * self.n_ops
        cycles = self.n_ops * GET_BASE_CYCLES + deps * c.local_access
        metrics.accesses = deps
        metrics.cycles = cycles
        return MemcachedResult(cycles, metrics, self.n_ops)
