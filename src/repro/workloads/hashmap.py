"""Zipf-skewed hashmap lookups (the §4.3/§4.4 microbenchmark).

The paper's setup: a C++ STL ``unordered_map`` with 4-byte keys and
values, a 2 GB working set, 50 M lookups sampled from a Zipf(1.02)
distribution, with the access trace itself stored in a 190 MB heap
array.  Temporal locality is high (hot keys dominate), spatial locality
is nil (hashing scatters neighbours), and the granularity is tiny —
precisely where object size choice and I/O amplification matter
(Figs. 9 and 13).

An STL ``unordered_map`` lookup touches two heap regions: the bucket
array (8 B per bucket) and the node the bucket points at (~32 B,
allocated in insertion order).  Both are modelled: every key's zipf
mass lands on the far-memory granule (object or page) holding its
bucket and on the granule holding its node.  The steady-state cache
behaviour is Che's LRU approximation over the combined granule heat —
which captures both the dilution effect (big granules mix hot and cold
entries) and the tail churn behind the paper's I/O-amplification
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS, GuardKind
from repro.net.backends import make_tcp_backend
from repro.sim.metrics import Metrics
from repro.units import is_power_of_two

#: Per-lookup base cost (hashing, comparisons, call overhead).
LOOKUP_BODY_CYCLES = 60.0

#: STL layout: 8-byte bucket slots, ~32-byte nodes (key+value+next+hash).
BUCKET_BYTES = 8
NODE_BYTES = 32


@dataclass
class HashmapResult:
    """Outcome of one hashmap run."""

    cycles: float
    metrics: Metrics
    n_lookups: int

    def throughput_mops(self, cpu_hz: float = 2.4e9) -> float:
        """MOps/s, the Fig. 9 metric."""
        if self.cycles <= 0:
            return 0.0
        return self.n_lookups / (self.cycles / cpu_hz) / 1e6

    def execution_seconds(self, cpu_hz: float = 2.4e9) -> float:
        """Wall seconds, the Fig. 13a metric."""
        return self.cycles / cpu_hz

    def amplification(self, working_set: int) -> float:
        return self.metrics.amplification(working_set)


@dataclass
class HashmapWorkload:
    """One hashmap configuration (sizes already scaled)."""

    working_set: int
    n_lookups: int
    skew: float = 1.02
    #: The on-heap array holding the pre-generated key trace.
    trace_bytes: int = 0
    seed: int = 7
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)
    body_cycles: float = LOOKUP_BODY_CYCLES

    def __post_init__(self) -> None:
        if self.working_set <= 0 or self.n_lookups <= 0:
            raise WorkloadError("working set and lookups must be positive")
        self._heat_cache: Dict[int, np.ndarray] = {}

    @property
    def n_keys(self) -> int:
        return max(1, self.working_set // (BUCKET_BYTES + NODE_BYTES))

    @property
    def buckets_bytes(self) -> int:
        return self.n_keys * BUCKET_BYTES

    # -- heat aggregation ----------------------------------------------------

    def _granule_heat(self, granule_size: int) -> np.ndarray:
        """Combined bucket+node granule popularity (cached per size)."""
        if not is_power_of_two(granule_size):
            raise WorkloadError("granule size must be a power of two")
        cached = self._heat_cache.get(granule_size)
        if cached is not None:
            return cached
        n = self.n_keys
        ranks = np.arange(1, n + 1, dtype=np.float64)
        mass = ranks ** (-self.skew)
        mass /= mass.sum()
        keys = np.arange(n, dtype=np.uint64)
        # Bucket of each rank: Fibonacci hash scatters hot keys.
        buckets = ((keys * np.uint64(0x9E3779B97F4A7C15)) % np.uint64(n)).astype(
            np.int64
        )
        bucket_gran = (buckets * BUCKET_BYTES) // granule_size
        # Node of each rank: insertion order is a fixed permutation.
        rng = np.random.default_rng(self.seed)
        node_index = rng.permutation(n).astype(np.int64)
        node_gran = (self.buckets_bytes + node_index * NODE_BYTES) // granule_size
        n_granules = int(max(bucket_gran.max(), node_gran.max())) + 1
        heat = np.zeros(n_granules, dtype=np.float64)
        np.add.at(heat, bucket_gran, mass * 0.5)
        np.add.at(heat, node_gran, mass * 0.5)
        self._heat_cache[granule_size] = heat
        return heat

    def hit_rate(self, granule_size: int, cache_granules: int) -> float:
        """Steady-state LRU hit rate (Che's approximation).

        A real LRU under zipf traffic keeps churning tail granules
        through the cache, so hit rates sit well below the ideal
        hottest-K bound — this refetch churn is the I/O amplification
        Fig. 13 measures.
        """
        from repro.sim.che import lru_hit_rate

        heat = self._granule_heat(granule_size)
        return lru_hit_rate(heat, cache_granules)

    # -- runtime models ---------------------------------------------------------

    def _trace_costs(
        self, granule_size: int, metrics: Metrics, chunked: bool
    ) -> float:
        """Cycles for streaming the key trace once (sequential reads)."""
        if self.trace_bytes <= 0:
            return 0.0
        c = self.costs
        backend = make_tcp_backend()
        n_granules = max(1, self.trace_bytes // granule_size)
        cycles = 0.0
        if chunked:
            # Chunked + prefetched: boundary per lookup, locality + wire
            # per granule.
            cycles += c.chunk_setup
            cycles += self.n_lookups * c.boundary_check
            cycles += n_granules * c.locality_guard
            cycles += n_granules * backend.link.wire_cycles(granule_size)
            metrics.count_guard(GuardKind.BOUNDARY, self.n_lookups)
            metrics.count_guard(GuardKind.LOCALITY, n_granules)
            metrics.prefetches_issued += n_granules
            metrics.prefetches_useful += n_granules
        else:
            fast = max(self.n_lookups - n_granules, 0)
            cycles += fast * c.fast_guard(AccessKind.READ, cached=True)
            cycles += n_granules * (
                c.slow_guard_local(AccessKind.READ, cached=False)
                + backend.link.transfer_cycles(granule_size)
            )
            metrics.count_guard(GuardKind.FAST, fast)
            metrics.count_guard(GuardKind.SLOW, n_granules)
        metrics.remote_fetches += n_granules
        metrics.bytes_fetched += n_granules * granule_size
        return cycles

    def run_trackfm(
        self,
        object_size: int,
        local_memory: int,
        chunk_trace: bool = True,
    ) -> HashmapResult:
        """TrackFM at a given compile-time object size."""
        c = self.costs
        metrics = Metrics()
        backend = make_tcp_backend()
        capacity = max(1, local_memory // object_size)
        # The streaming trace continuously claims a prefetch window's
        # worth of residency; the rest caches hot bucket/node objects.
        trace_window = 16 if self.trace_bytes else 0
        cache = max(1, capacity - trace_window)
        hr = self.hit_rate(object_size, cache)
        deps = 2 * self.n_lookups  # bucket + node per lookup
        hits = int(round(deps * hr))
        misses = deps - hits

        cycles = self.n_lookups * self.body_cycles + deps * c.local_access
        cycles += hits * c.fast_guard(AccessKind.READ, cached=True)
        cycles += misses * (
            c.slow_guard_local(AccessKind.READ, cached=False)
            + backend.link.transfer_cycles(object_size)
        )
        metrics.count_guard(GuardKind.FAST, hits)
        metrics.count_guard(GuardKind.SLOW, misses)
        metrics.remote_fetches += misses
        metrics.bytes_fetched += misses * object_size
        metrics.evictions += misses
        cycles += self._trace_costs(object_size, metrics, chunked=chunk_trace)
        metrics.accesses = deps + self.n_lookups
        metrics.cycles = cycles
        return HashmapResult(cycles=cycles, metrics=metrics, n_lookups=self.n_lookups)

    def run_trackfm_multisize(
        self,
        bucket_object_size: int,
        trace_object_size: int,
        local_memory: int,
    ) -> HashmapResult:
        """Multiple object sizes (§3.2 future work): per-region classes.

        The buckets/nodes (fine-grained, random) use a small class; the
        streaming key trace (sequential) uses a large one — the per-site
        recommendation :func:`repro.compiler.size_classes.recommend_object_sizes`
        produces for exactly this shape.
        """
        c = self.costs
        metrics = Metrics()
        backend = make_tcp_backend()
        capacity = max(1, local_memory // bucket_object_size)
        trace_window = 16 if self.trace_bytes else 0
        cache = max(1, capacity - trace_window)
        hr = self.hit_rate(bucket_object_size, cache)
        deps = 2 * self.n_lookups
        hits = int(round(deps * hr))
        misses = deps - hits

        cycles = self.n_lookups * self.body_cycles + deps * c.local_access
        cycles += hits * c.fast_guard(AccessKind.READ, cached=True)
        cycles += misses * (
            c.slow_guard_local(AccessKind.READ, cached=False)
            + backend.link.transfer_cycles(bucket_object_size)
        )
        metrics.count_guard(GuardKind.FAST, hits)
        metrics.count_guard(GuardKind.SLOW, misses)
        metrics.remote_fetches += misses
        metrics.bytes_fetched += misses * bucket_object_size
        metrics.evictions += misses
        cycles += self._trace_costs(trace_object_size, metrics, chunked=True)
        metrics.accesses = deps + self.n_lookups
        metrics.cycles = cycles
        return HashmapResult(cycles=cycles, metrics=metrics, n_lookups=self.n_lookups)

    def run_fastswap(self, local_memory: int, page_size: int = 4096) -> HashmapResult:
        """Fastswap: same workload at page granularity."""
        c = self.costs
        metrics = Metrics()
        capacity = max(1, local_memory // page_size)
        trace_window = 8 if self.trace_bytes else 0
        cache = max(1, capacity - trace_window)
        hr = self.hit_rate(page_size, cache)
        deps = 2 * self.n_lookups
        hits = int(round(deps * hr))
        misses = deps - hits

        cycles = self.n_lookups * self.body_cycles + deps * c.local_access
        cycles += misses * (
            c.fastswap_fault(AccessKind.READ, remote=True) + 2_000.0
        )
        metrics.major_faults += misses
        metrics.remote_fetches += misses
        metrics.bytes_fetched += misses * page_size
        metrics.evictions += misses
        # Trace streaming: one major fault per page, no readahead credit
        # (swap readahead thrashes under the random bucket traffic).
        if self.trace_bytes:
            trace_pages = max(1, self.trace_bytes // page_size)
            cycles += trace_pages * c.fastswap_fault(AccessKind.READ, remote=True)
            metrics.major_faults += trace_pages
            metrics.remote_fetches += trace_pages
            metrics.bytes_fetched += trace_pages * page_size
        metrics.accesses = deps + self.n_lookups
        metrics.cycles = cycles
        return HashmapResult(cycles=cycles, metrics=metrics, n_lookups=self.n_lookups)

    def run_local(self) -> HashmapResult:
        metrics = Metrics()
        deps = 2 * self.n_lookups
        cycles = self.n_lookups * self.body_cycles + deps * self.costs.local_access
        metrics.accesses = deps + self.n_lookups
        metrics.cycles = cycles
        return HashmapResult(cycles=cycles, metrics=metrics, n_lookups=self.n_lookups)
