"""Phase-change workload: region densities that flip mid-run.

The adaptive hybrid's selector (docs/hybrid.md) is an *online* policy;
the workloads the rest of the suite replays are density-stationary, so
any one-shot placement would serve them equally well.  This workload is
the one that is only served well by a policy that keeps watching: it
runs ``n_phases`` phases, and each phase moves the *hot* region — the
one swept densely, object after object, pass after pass — one slot
along the arena while every other region cools down to sparse probes.

A region that was hot (high access density: paging amortizes, guard
costs dominate) becomes sparse (low density: one fault per probe window
hauls a whole page over the wire for a handful of bytes — object fetch
wins), and vice versa, so a reactive selector flips regions both
objects → pages and pages → objects over the run.  With the default
cost calibration the sparse-side advantage is real but modest (the I/O
amplification wire term), so selectors need a small hysteresis band
(≲ 0.08) to track the phase changes; the differential tests run it
both ways.

Like every workload here, structure, access order and the result
digest are pure functions of the constructor arguments.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv_fold(acc: int, value: int) -> int:
    return ((acc ^ (value & _MASK64)) * _FNV_PRIME) & _MASK64


class PhaseShiftWorkload:
    """Dense/sparse phases that rotate the hot region around the arena."""

    name = "phase"

    def __init__(
        self,
        n_regions: int = 4,
        region_bytes: int = 4096,
        dense_stride: int = 256,
        n_phases: int = 4,
        dense_passes: int = 8,
        sparse_probes: int = 12,
        seed: int = 1,
    ) -> None:
        if n_regions < 2:
            raise WorkloadError("phase workload needs at least 2 regions")
        if n_phases < 2:
            raise WorkloadError("phase workload needs at least 2 phases")
        if region_bytes <= 0 or dense_stride <= 0:
            raise WorkloadError("region_bytes and dense_stride must be positive")
        if region_bytes % dense_stride != 0:
            raise WorkloadError(
                f"region_bytes {region_bytes} must be a multiple of "
                f"dense_stride {dense_stride}"
            )
        if dense_passes < 1 or sparse_probes < 1:
            raise WorkloadError("dense_passes and sparse_probes must be >= 1")
        self.n_regions = n_regions
        self.region_bytes = region_bytes
        self.dense_stride = dense_stride
        self.n_phases = n_phases
        self.dense_passes = dense_passes
        self.sparse_probes = sparse_probes
        self.seed = seed
        self.arena_bytes = n_regions * region_bytes

    def hot_region(self, phase: int) -> int:
        """The densely swept region of ``phase`` (rotates with the seed)."""
        return (phase + self.seed) % self.n_regions

    def accesses(self) -> Iterator[Tuple[int, AccessKind]]:
        """The far-memory access stream, phase by phase.

        The hot region is swept at ``dense_stride`` (writes on the first
        pass, reads after: a build-then-reuse shape); every cold region
        gets ``sparse_probes`` reads of its first word, dealt
        round-robin *across* the cold regions — the interleaved shape a
        page tier is worst at (each probe lands on a different page) and
        an object tier shrugs at (each probe is one resident object).
        """
        slots = self.region_bytes // self.dense_stride
        for phase in range(self.n_phases):
            hot = self.hot_region(phase)
            hot_base = hot * self.region_bytes
            for sweep in range(self.dense_passes):
                kind = AccessKind.WRITE if sweep == 0 else AccessKind.READ
                for slot in range(slots):
                    yield hot_base + slot * self.dense_stride, kind
            for _ in range(self.sparse_probes):
                for region in range(self.n_regions):
                    if region == hot:
                        continue
                    yield region * self.region_bytes, AccessKind.READ

    def value(self) -> int:
        """FNV digest of the access stream — the program result.

        Runtime-independent: the stream is a pure function of the
        workload parameters, never of where its bytes were served from.
        """
        acc = _FNV_OFFSET
        for offset, kind in self.accesses():
            acc = _fnv_fold(acc, (offset << 1) | (1 if kind is AccessKind.WRITE else 0))
        return acc

    @property
    def accesses_per_phase(self) -> int:
        slots = self.region_bytes // self.dense_stride
        return self.dense_passes * slots + self.sparse_probes * (self.n_regions - 1)
