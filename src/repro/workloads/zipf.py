"""Zipf-distributed key generation.

The paper's hashmap and memcached experiments sample keys from a Zipf
distribution ("skew 1.02", "skew parameter between 1.01 and 1.04", up
to 1.3).  We generate keys by inverse-CDF sampling over the exact
normalized distribution — deterministic under a seed, vectorized with
numpy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError


class ZipfGenerator:
    """Samples ranks 0..n-1 with P(rank i) proportional to 1/(i+1)^skew."""

    def __init__(self, n_keys: int, skew: float, seed: int = 12345) -> None:
        if n_keys <= 0:
            raise WorkloadError("n_keys must be positive")
        if skew <= 0:
            raise WorkloadError("zipf skew must be positive")
        self.n_keys = n_keys
        self.skew = skew
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, n_keys + 1, dtype=np.float64)
        weights = ranks ** (-skew)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int) -> np.ndarray:
        """``count`` keys (int64 ranks, 0-based), most popular = 0."""
        if count <= 0:
            raise WorkloadError("sample count must be positive")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def hot_fraction(self, top_k: int) -> float:
        """Probability mass of the ``top_k`` most popular keys."""
        if top_k <= 0:
            return 0.0
        k = min(top_k, self.n_keys)
        return float(self._cdf[k - 1])

    def expected_hit_rate(self, cache_keys: int) -> float:
        """Hit rate of an ideal cache holding the hottest ``cache_keys``.

        Used by closed-form sweeps: under LRU with zipf traffic the
        cache converges to roughly the most popular keys.
        """
        return self.hot_fraction(cache_keys)
