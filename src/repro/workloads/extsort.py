"""External sort/shuffle: partitioned run formation + k-way merge.

Models the access pattern of an out-of-core sort over a far array:

* **Phase 1 (run formation):** each partition is read sequentially,
  sorted locally, and written back sequentially to a run region — the
  streaming, prefetch-friendly half.
* **Phase 2 (k-way merge):** a heap-of-heads merge reads one element
  from whichever run currently holds the minimum — a data-dependent
  interleaving across ``partitions`` far regions that defeats simple
  stride detection — and writes the merged output sequentially.

Keys are splitmix64 draws indexed by (seed, position), so the sorted
result, the merge interleaving, and the FNV digest are pure functions
of the constructor arguments.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind
from repro.serve.ring import _splitmix64
from repro.workloads.graph import WORD, _FNV_OFFSET, _fnv_fold


class ExternalSortWorkload:
    """Partitioned external sort over one far arena (input/runs/output)."""

    name = "extsort"

    def __init__(self, n_keys: int = 512, partitions: int = 4, seed: int = 2) -> None:
        if partitions < 2:
            raise WorkloadError("extsort needs at least 2 partitions")
        if n_keys < partitions:
            raise WorkloadError("extsort needs at least one key per partition")
        self.n_keys = n_keys
        self.partitions = partitions
        self.seed = seed
        self.keys = [
            _splitmix64(((seed & ((1 << 64) - 1)) << 3) ^ _splitmix64(i ^ 0x5EED))
            for i in range(n_keys)
        ]
        # Partition bounds: first `rem` partitions get one extra key.
        base, rem = divmod(n_keys, partitions)
        bounds: List[Tuple[int, int]] = []
        start = 0
        for p in range(partitions):
            size = base + (1 if p < rem else 0)
            bounds.append((start, start + size))
            start += size
        self.bounds = bounds
        #: Region bases inside the arena, in bytes.
        self.input_base = 0
        self.run_base = n_keys * WORD
        self.output_base = 2 * n_keys * WORD
        self.arena_bytes = 3 * n_keys * WORD

    def sorted_runs(self) -> List[List[int]]:
        return [sorted(self.keys[lo:hi]) for lo, hi in self.bounds]

    def merged(self) -> List[int]:
        return list(heapq.merge(*self.sorted_runs()))

    def accesses(self) -> Iterator[Tuple[int, AccessKind]]:
        """The far-memory access stream of the full sort, both phases."""
        runs = self.sorted_runs()
        # Phase 1: per-partition sequential read, then sequential write of
        # the sorted run into the run region (same slot range).
        for lo, hi in self.bounds:
            for i in range(lo, hi):
                yield self.input_base + i * WORD, AccessKind.READ
            for i in range(lo, hi):
                yield self.run_base + i * WORD, AccessKind.WRITE
        # Phase 2: heap merge.  Each pop reads the winning run's next
        # element (data-dependent region) and appends to the output.
        heads = [(run[0], p, 0) for p, run in enumerate(runs) if run]
        heapq.heapify(heads)
        out = 0
        while heads:
            key, p, idx = heapq.heappop(heads)
            lo, _hi = self.bounds[p]
            yield self.run_base + (lo + idx) * WORD, AccessKind.READ
            yield self.output_base + out * WORD, AccessKind.WRITE
            out += 1
            run = runs[p]
            if idx + 1 < len(run):
                heapq.heappush(heads, (run[idx + 1], p, idx + 1))

    def value(self) -> int:
        """FNV digest over the merged sorted sequence."""
        acc = _FNV_OFFSET
        for key in self.merged():
            acc = _fnv_fold(acc, key)
        acc = _fnv_fold(acc, self.n_keys)
        return acc
