"""The NYC-taxi analytics application (§4.5, Figs. 14 and 15).

The paper adapts a Kaggle taxi-trip analysis to a 31 GB working set:
"many column scan operations, which involve tight loops with almost no
temporal locality but a high degree of spatial locality", plus "several
aggregation operations that involve loops that iterate over small
collections of table rows (low object density)".

We synthesize a taxi-shaped dataframe, run the analysis pipeline to get
its access plans, and cost those plans under each system.  The plans
are decided exactly the way the compiler decides them: the chunking
cost model approves the long scans and (under the profile-guided
policy) rejects the short aggregation loops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.compiler.cost_model import ChunkingCostModel, LoopShape
from repro.errors import WorkloadError
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS, GuardKind
from repro.net.backends import make_rdma_backend, make_tcp_backend
from repro.sim.metrics import Metrics
from repro.units import BASE_PAGE, ceil_div
from repro.workloads.dataframe import (
    AccessPattern,
    AccessPlan,
    Column,
    DataFrame,
)

#: Tight column-scan loop body cost per element.
SCAN_BODY_CYCLES = 12.0
#: Aggregation loop body cost per element (branchier).
AGG_BODY_CYCLES = 20.0

#: Rows per aggregation group in the taxi pipeline (small collections).
ROWS_PER_GROUP = 8

#: DerefScope construction + per-group iterator setup in the AIFM port.
AIFM_SCOPE_CYCLES = 120.0


class System(enum.Enum):
    """The four systems Fig. 14 compares."""

    LOCAL = "local"
    TRACKFM = "trackfm"
    FASTSWAP = "fastswap"
    AIFM = "aifm"


class AnalyticsChunking(enum.Enum):
    """Fig. 15's three TrackFM chunking policies."""

    BASELINE = "baseline"
    ALL_LOOPS = "all_loops"
    HIGH_DENSITY = "high_density"


def build_taxi_frame(n_rows: int, with_values: bool = False, seed: int = 3) -> DataFrame:
    """A taxi-trip-shaped dataframe (8-byte numeric columns)."""
    if n_rows <= 0:
        raise WorkloadError("n_rows must be positive")
    rng = np.random.default_rng(seed)

    def values(gen) -> Optional[np.ndarray]:
        return gen() if with_values else None

    cols = [
        Column("pickup_hour", n_rows, 8, values(lambda: rng.integers(0, 24, n_rows))),
        Column("trip_distance", n_rows, 8, values(lambda: rng.exponential(2.5, n_rows))),
        Column("fare", n_rows, 8, values(lambda: rng.exponential(12.0, n_rows))),
        Column("tip", n_rows, 8, values(lambda: rng.exponential(2.0, n_rows))),
        Column("passengers", n_rows, 8, values(lambda: rng.integers(1, 6, n_rows))),
    ]
    return DataFrame(cols)


def run_taxi_pipeline(frame: DataFrame) -> List[AccessPlan]:
    """Execute the analysis; returns the access plans it generated.

    Mirrors the Kaggle notebook's flow: distribution stats over
    distances and fares, a derived fare-per-mile column, and hourly /
    per-group aggregations.
    """
    n_groups = max(1, frame.n_rows // ROWS_PER_GROUP)
    frame.reset_plans()
    frame.scan_mean("trip_distance")
    frame.filter_count("trip_distance", lambda d: d > 0.5)
    frame.scan_mean("fare")
    frame.combine("fare", "trip_distance", "fare_per_mile", lambda f, d: f / (d + 1e-9))
    frame.scan_mean("fare_per_mile")
    frame.groupby_agg("pickup_hour", "fare", n_groups=n_groups)
    frame.groupby_agg("pickup_hour", "tip", n_groups=n_groups)
    frame.scan_sum("passengers")
    return frame.reset_plans()


@dataclass
class AnalyticsWorkload:
    """The 31 GB-shaped analytics run (sizes already scaled)."""

    working_set: int
    object_size: int = BASE_PAGE
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.working_set <= 0:
            raise WorkloadError("working set must be positive")
        # 5 base columns x 8 bytes.
        self.n_rows = max(1, self.working_set // 40)
        frame = build_taxi_frame(self.n_rows)
        self.plans = run_taxi_pipeline(frame)

    # -- plan costing -------------------------------------------------------

    def _plan_chunk_decision(
        self, plan: AccessPlan, policy: AnalyticsChunking
    ) -> bool:
        """Would the compiler chunk this plan's loop?"""
        if policy is AnalyticsChunking.BASELINE:
            return False
        if policy is AnalyticsChunking.ALL_LOOPS:
            return True
        model = ChunkingCostModel(self.object_size, self.costs)
        shape = LoopShape(
            iterations_per_entry=plan.iterations_per_entry,
            elem_size=plan.elem_size,
            entries=plan.entries,
        )
        return model.should_chunk(shape)

    def _cost_trackfm_plan(
        self,
        plan: AccessPlan,
        resident: float,
        chunked: bool,
        metrics: Metrics,
        link,
    ) -> float:
        c = self.costs
        kind = AccessKind.WRITE if plan.is_write else AccessKind.READ
        body = (
            SCAN_BODY_CYCLES
            if plan.pattern is AccessPattern.SEQUENTIAL
            else AGG_BODY_CYCLES
        )
        n = plan.n_elems
        n_objects = max(1, ceil_div(n * plan.elem_size, self.object_size))
        misses = int(round(n_objects * (1.0 - resident)))
        cycles = n * body
        if chunked:
            cycles += plan.entries * c.chunk_setup
            cycles += n * c.boundary_check
            cycles += n_objects * c.locality_guard
            cycles += misses * link.wire_cycles(self.object_size)
            metrics.count_guard(GuardKind.BOUNDARY, n)
            metrics.count_guard(GuardKind.LOCALITY, n_objects)
        else:
            fast = max(n - n_objects, 0)
            cycles += fast * c.fast_guard(kind, cached=True)
            cycles += (n_objects - misses) * c.slow_guard_local(kind, cached=True)
            cycles += misses * (
                c.slow_guard_local(kind, cached=False)
                + link.transfer_cycles(self.object_size)
            )
            metrics.count_guard(GuardKind.FAST, fast)
            metrics.count_guard(GuardKind.SLOW, n_objects)
        metrics.remote_fetches += misses
        metrics.bytes_fetched += misses * self.object_size
        if plan.is_write and misses:
            cycles += misses * link.wire_cycles(self.object_size) * 0.25
            metrics.bytes_evacuated += misses * self.object_size
        metrics.accesses += n
        return cycles

    def run_trackfm(
        self,
        local_memory: int,
        policy: AnalyticsChunking = AnalyticsChunking.HIGH_DENSITY,
    ) -> Tuple[float, Metrics]:
        metrics = Metrics()
        link = make_tcp_backend().link
        resident = min(1.0, local_memory / self.working_set)
        cycles = 0.0
        for plan in self.plans:
            chunked = self._plan_chunk_decision(plan, policy)
            cycles += self._cost_trackfm_plan(plan, resident, chunked, metrics, link)
        metrics.cycles = cycles
        return cycles, metrics

    def run_fastswap(self, local_memory: int) -> Tuple[float, Metrics]:
        metrics = Metrics()
        link = make_rdma_backend().link
        c = self.costs
        page = BASE_PAGE
        resident = min(1.0, local_memory / self.working_set)
        # Under cgroup pressure the kernel's reclaim evicts pages that
        # are still live (readahead pollution + coarse LRU), causing
        # refaults TrackFM's object-hotness tracking avoids (§4.5).
        thrash = 1.0 + 0.75 * (1.0 - resident)
        cycles = 0.0
        for plan in self.plans:
            kind = AccessKind.WRITE if plan.is_write else AccessKind.READ
            body = (
                SCAN_BODY_CYCLES
                if plan.pattern is AccessPattern.SEQUENTIAL
                else AGG_BODY_CYCLES
            )
            n = plan.n_elems
            n_pages = max(1, ceil_div(n * plan.elem_size, page))
            misses = int(round(n_pages * (1.0 - resident) * thrash))
            cycles += n * body
            # Sequential scans get partial swap-readahead credit: the
            # kernel clusters swap-ins, halving the blocking cost; the
            # fault still occurs (and is counted).
            fault = c.fastswap_fault(kind, remote=True)
            if plan.pattern is AccessPattern.SEQUENTIAL:
                fault *= 0.5
            cycles += misses * (fault + 2_000.0)
            metrics.major_faults += misses
            metrics.remote_fetches += misses
            metrics.bytes_fetched += misses * page
            if plan.is_write and misses:
                cycles += misses * link.wire_cycles(page) * 0.25
                metrics.bytes_evacuated += misses * page
            metrics.accesses += n
        metrics.cycles = cycles
        return cycles, metrics

    def run_aifm(self, local_memory: int) -> Tuple[float, Metrics]:
        """The hand-ported AIFM version: library iterators + prefetch."""
        metrics = Metrics()
        link = make_tcp_backend().link
        c = self.costs
        resident = min(1.0, local_memory / self.working_set)
        deref = 9.0  # smart-pointer indirection
        cycles = 0.0
        for plan in self.plans:
            body = (
                SCAN_BODY_CYCLES
                if plan.pattern is AccessPattern.SEQUENTIAL
                else AGG_BODY_CYCLES
            )
            n = plan.n_elems
            n_objects = max(1, ceil_div(n * plan.elem_size, self.object_size))
            misses = int(round(n_objects * (1.0 - resident)))
            cycles += n * (body + deref)
            # Each aggregation group constructs a DerefScope and a
            # remote-iterator (Listing 1), paid per loop entry.
            if plan.pattern is AccessPattern.SHORT_LOOPS:
                cycles += plan.entries * AIFM_SCOPE_CYCLES
            # Library iterators prefetch scans; aggregations issue
            # concurrent fetches (AIFM's deep request pipeline).
            cycles += misses * link.wire_cycles(self.object_size)
            metrics.remote_fetches += misses
            metrics.bytes_fetched += misses * self.object_size
            if plan.is_write and misses:
                cycles += misses * link.wire_cycles(self.object_size) * 0.25
                metrics.bytes_evacuated += misses * self.object_size
            metrics.accesses += n
        metrics.cycles = cycles
        return cycles, metrics

    def run_local(self) -> Tuple[float, Metrics]:
        metrics = Metrics()
        cycles = 0.0
        for plan in self.plans:
            body = (
                SCAN_BODY_CYCLES
                if plan.pattern is AccessPattern.SEQUENTIAL
                else AGG_BODY_CYCLES
            )
            cycles += plan.n_elems * body
            metrics.accesses += plan.n_elems
        metrics.cycles = cycles
        return cycles, metrics

    def run(self, system: System, local_memory: int) -> Tuple[float, Metrics]:
        if system is System.LOCAL:
            return self.run_local()
        if system is System.TRACKFM:
            return self.run_trackfm(local_memory)
        if system is System.FASTSWAP:
            return self.run_fastswap(local_memory)
        return self.run_aifm(local_memory)
