"""The STREAM benchmark (McCalpin), far-memory edition.

§4.2/§4.3 use STREAM's "Sum" (``sum += a[i]``, one access per
iteration) and "Copy" (``a[i] = b[i]``, two accesses) kernels over
multi-GB integer arrays: sequential access, perfect spatial locality,
tiny elements — the best case for loop chunking and prefetching and the
worst case for per-access guards.

The workload runs against any of the four runtimes through their
closed-form scan paths; per-pass residency follows the steady-state
assumption that a fraction ``local/working_set`` of a cyclically
scanned array is found local (pass 0 starts cold).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.aifm.runtime import AIFMRuntime
from repro.errors import WorkloadError
from repro.fastswap.runtime import FastswapRuntime
from repro.machine.costs import AccessKind
from repro.sim.local import LocalRuntime
from repro.trackfm.runtime import GuardStrategy, TrackFMRuntime

#: Per-access cost inside a tight streaming loop: the load/store plus its
#: share of induction-variable bookkeeping, well below the standalone
#: 36-cycle probe of Table 1 (which includes call/serialization overhead).
STREAM_BODY_CYCLES = 15.0


class StreamKernel(enum.Enum):
    """Which STREAM kernel to run.

    The paper's §4.2 uses Sum (one read) and Copy (read + write); Scale
    (read + write with a multiply) and Triad (two reads + one write) are
    the rest of McCalpin's suite, included for completeness.
    """

    SUM = "sum"
    COPY = "copy"
    SCALE = "scale"
    TRIAD = "triad"


#: (reads per element, writes per element, arrays) per kernel.
_KERNEL_SHAPE = {
    StreamKernel.SUM: (1, 0, 1),
    StreamKernel.COPY: (1, 1, 2),
    StreamKernel.SCALE: (1, 1, 2),
    StreamKernel.TRIAD: (2, 1, 3),
}


@dataclass
class StreamWorkload:
    """One STREAM configuration (sizes already scaled)."""

    #: Total working set in bytes (both arrays together for Copy).
    working_set: int
    kernel: StreamKernel = StreamKernel.SUM
    #: STREAM's arrays hold 4-byte integers in the paper's §4.2 runs.
    elem_size: int = 4
    passes: int = 4
    body_cycles: float = STREAM_BODY_CYCLES

    def __post_init__(self) -> None:
        if self.working_set <= 0:
            raise WorkloadError("working set must be positive")
        if self.passes < 1:
            raise WorkloadError("need at least one pass")

    @property
    def _shape(self):
        return _KERNEL_SHAPE[self.kernel]

    @property
    def arrays(self) -> int:
        return self._shape[2]

    @property
    def accesses_per_elem(self) -> int:
        reads, writes, _ = self._shape
        return reads + writes

    @property
    def array_bytes(self) -> int:
        """Bytes per array (the working set is split across the arrays)."""
        return self.working_set // self.arrays

    @property
    def elems_per_array(self) -> int:
        return max(1, self.array_bytes // self.elem_size)

    def _resident_fraction(self, local_memory: int, pass_idx: int) -> float:
        if pass_idx == 0:
            return 0.0
        return min(1.0, local_memory / self.working_set)

    def _scans(self):
        """(array offset, AccessKind) per scan of one kernel pass."""
        reads, writes, _arrays = self._shape
        scans = []
        for r in range(reads):
            scans.append((r * self.array_bytes, AccessKind.READ))
        for w in range(writes):
            scans.append(((reads + w) * self.array_bytes, AccessKind.WRITE))
        return scans

    # -- per-runtime drivers ------------------------------------------------

    def run_trackfm(
        self, runtime: TrackFMRuntime, strategy: GuardStrategy
    ) -> float:
        """Total cycles for all passes under one guard strategy."""
        local = runtime.config.local_memory
        total = 0.0
        for p in range(self.passes):
            frac = self._resident_fraction(local, p)
            for offset, kind in self._scans():
                total += runtime.sequential_scan(
                    offset, self.elems_per_array, self.elem_size,
                    kind, strategy, frac, self.body_cycles,
                )
        return total

    def run_fastswap(self, runtime: FastswapRuntime) -> float:
        local = runtime.config.local_memory
        total = 0.0
        for p in range(self.passes):
            frac = self._resident_fraction(local, p)
            under_pressure = local < self.working_set
            for offset, kind in self._scans():
                total += runtime.sequential_scan(
                    offset, self.elems_per_array, self.elem_size,
                    kind, frac, self.body_cycles, under_pressure,
                )
        return total

    def run_aifm(self, runtime: AIFMRuntime) -> float:
        local = runtime.config.local_memory
        total = 0.0
        for p in range(self.passes):
            frac = self._resident_fraction(local, p)
            for offset, kind in self._scans():
                total += runtime.sequential_scan(
                    offset, self.elems_per_array, self.elem_size, kind, frac
                )
        return total

    def run_local(self, runtime: LocalRuntime) -> float:
        total = 0.0
        for _ in range(self.passes):
            for _offset, _kind in self._scans():
                total += runtime.sequential_scan(
                    0, self.elems_per_array, self.elem_size,
                    AccessKind.READ, self.body_cycles,
                )
        return total

    # -- metrics the figures report --------------------------------------------

    def bandwidth_mb_per_s(self, cycles: float, cpu_hz: float = 2.4e9) -> float:
        """STREAM's default metric: MB/s of application data touched."""
        if cycles <= 0:
            return 0.0
        bytes_touched = (
            self.passes * self.accesses_per_elem * self.elems_per_array * self.elem_size
        )
        seconds = cycles / cpu_hz
        return bytes_touched / seconds / 1e6
