"""Pointer-chasing graph traversal: BFS over a seeded random graph.

The far-memory arena holds a CSR adjacency (offsets + edge lists), a
per-node payload region, and a distance output region.  A breadth-first
search from node 0 walks the structure in the classic pointer-chasing
order: two offset reads per popped node, one read per outgoing edge,
one payload read per visit, one distance write per visit.  Unlike
STREAM's sequential pass, the edge targets are splitmix64-scattered, so
consecutive far accesses land in unrelated objects — the access pattern
prefetchers are worst at.

The graph is a ring (``i -> (i+1) mod n``, guaranteeing every node is
reachable) plus ``extra_edges`` seed-derived random edges per node.
Everything — structure, traversal order, and the result digest — is a
pure function of the constructor arguments, which is what lets the
ablation engine pin bit-identical metrics fingerprints and lets the
cross-runtime tests demand value equality on all four runtimes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind
from repro.serve.ring import _splitmix64

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: Bytes per CSR slot (offsets, edges, distances are 64-bit words).
WORD = 8


def _fnv_fold(acc: int, value: int) -> int:
    return ((acc ^ (value & _MASK64)) * _FNV_PRIME) & _MASK64


class GraphTraversalWorkload:
    """BFS over a seeded random graph laid out in one far arena."""

    name = "graph"

    def __init__(
        self,
        n_nodes: int = 192,
        extra_edges: int = 3,
        payload_bytes: int = 16,
        seed: int = 1,
    ) -> None:
        if n_nodes < 2:
            raise WorkloadError("graph needs at least 2 nodes")
        if extra_edges < 0:
            raise WorkloadError("extra_edges must be >= 0")
        if payload_bytes < WORD:
            raise WorkloadError(f"payload_bytes must be >= {WORD}")
        self.n_nodes = n_nodes
        self.extra_edges = extra_edges
        self.payload_bytes = payload_bytes
        self.seed = seed
        # CSR construction: ring edge first, then seeded extras.  The
        # stream of splitmix64 draws is indexed by (seed, node, slot) so
        # the structure never depends on Python hashing or dict order.
        offsets: List[int] = [0]
        edges: List[int] = []
        for u in range(n_nodes):
            edges.append((u + 1) % n_nodes)
            for slot in range(extra_edges):
                draw = _splitmix64(
                    ((seed & _MASK64) << 1)
                    ^ _splitmix64((u << 20) | (slot << 4) | 0x9)
                )
                edges.append(draw % n_nodes)
            offsets.append(len(edges))
        self.offsets = offsets
        self.edges = edges
        #: Region bases inside the arena, in bytes.
        self.offsets_base = 0
        self.edges_base = (n_nodes + 1) * WORD
        self.payload_base = self.edges_base + len(edges) * WORD
        self.dist_base = self.payload_base + n_nodes * payload_bytes
        self.arena_bytes = self.dist_base + n_nodes * WORD

    # -- the traversal (pure; shared by accesses() and value()) -------------

    def bfs(self) -> Tuple[List[int], Dict[int, int]]:
        """Visit order and distances of a BFS from node 0."""
        dist: Dict[int, int] = {0: 0}
        order: List[int] = []
        frontier = [0]
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                order.append(u)
                for e in range(self.offsets[u], self.offsets[u + 1]):
                    v = self.edges[e]
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        next_frontier.append(v)
            frontier = next_frontier
        return order, dist

    def accesses(self) -> Iterator[Tuple[int, AccessKind]]:
        """The far-memory access stream of one BFS, in traversal order."""
        dist: Dict[int, int] = {0: 0}
        frontier = [0]
        while frontier:
            next_frontier: List[int] = []
            for u in frontier:
                yield self.offsets_base + u * WORD, AccessKind.READ
                yield self.offsets_base + (u + 1) * WORD, AccessKind.READ
                yield self.payload_base + u * self.payload_bytes, AccessKind.READ
                yield self.dist_base + u * WORD, AccessKind.WRITE
                for e in range(self.offsets[u], self.offsets[u + 1]):
                    yield self.edges_base + e * WORD, AccessKind.READ
                    v = self.edges[e]
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        next_frontier.append(v)
            frontier = next_frontier

    def value(self) -> int:
        """FNV digest over (visit order, distance) — the program result.

        Independent of which runtime replayed the access stream: the
        traversal is a pure function of the seeded structure.
        """
        order, dist = self.bfs()
        acc = _FNV_OFFSET
        for u in order:
            acc = _fnv_fold(acc, (u << 32) | dist[u])
        acc = _fnv_fold(acc, len(order))
        return acc

    @property
    def n_edges(self) -> int:
        return len(self.edges)
