"""Structurally-faithful NAS mini-kernels in IR.

:mod:`repro.workloads.nas` models the suite's *costs*; this module
builds the suite's *access patterns* as real, executable IR so the
compiler faces what it faced in the paper:

* **CG** — CSR sparse matrix-vector product: a sequential sweep over
  values/column indices plus a *gather* (``x[col[j]]``) the chunking
  analysis cannot chunk (no IV-strided pointer);
* **IS** — counting sort: a histogram pass with indirect
  read-modify-writes (*scatter*), then a sequential output pass;
* **MG** — a 3-point stencil sweep: three IV-strided accesses per
  iteration, the best case for chunking;
* **SP** — a first-order recurrence sweep (``a[i] -= c * a[i-1]``):
  loop-carried through memory yet still IV-strided;
* **FT** — a column-major traversal of a 2-D array: a deeply nested
  loop whose inner stride is the whole row length, which is what
  "confounds our loop analysis" (§4.5) — the object density of the
  inner access is ~1.

Each builder seeds its input data *in IR* (deterministic LCG), so the
whole program is self-contained and its result can be checked against
the pure-Python references also provided here.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.ir import IRBuilder, Module
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.types import I64, PTR
from repro.ir.values import Constant, Value

#: Deterministic LCG used to seed data identically in IR and Python.
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407
MASK64 = (1 << 64) - 1


def _lcg_next(x: int) -> int:
    return (x * LCG_A + LCG_C) & MASK64


def _signed(x: int) -> int:
    return x - (1 << 64) if x >= 1 << 63 else x


def _counted_loop(
    b: IRBuilder,
    f: Function,
    n: Value,
    prefix: str,
    body_fn: Callable[[IRBuilder, Value, BasicBlock], None],
) -> BasicBlock:
    """Emit ``for i in range(n): body``; returns the after-loop block.

    ``body_fn(b, i, latch_target)`` must leave the builder positioned in
    a block it terminates with a branch to ``latch_target`` (which
    increments and loops), or not terminate at all (we add the branch).
    """
    header = f.add_block(f"{prefix}.header")
    body = f.add_block(f"{prefix}.body")
    after = f.add_block(f"{prefix}.after")
    entry_pred = b.block
    b.br(header)
    b.set_block(header)
    i = b.phi(I64, name=f"{prefix}.i")
    b.condbr(b.icmp("slt", i, n), body, after)
    b.set_block(body)
    latch = f.add_block(f"{prefix}.latch")
    body_fn(b, i, latch)
    if b.block.terminator is None:
        b.br(latch)
    b.set_block(latch)
    i2 = b.add(i, 1, name=f"{prefix}.i2")
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry_pred)
    i.add_incoming(i2, latch)
    b.set_block(after)
    return after


def _emit_lcg_fill(b: IRBuilder, f: Function, dest: Value, n: Value, seed: int,
                   modulo: Value, prefix: str) -> None:
    """``for i < n: dest[i] = lcg_stream(i) % modulo`` (i64 elements)."""
    state_slot = b.alloca(8, name=f"{prefix}.state")
    b.store(seed, state_slot)

    def body(bb: IRBuilder, i: Value, latch: BasicBlock) -> None:
        s = bb.load(I64, state_slot)
        s2 = bb.add(bb.mul(s, LCG_A), LCG_C)
        bb.store(s2, state_slot)
        value = bb.srem(bb.and_(s2, (1 << 31) - 1), modulo)
        bb.store(value, bb.gep(dest, i, 8))

    _counted_loop(b, f, n, prefix, body)


def lcg_fill_reference(n: int, seed: int, modulo: int) -> List[int]:
    """The Python twin of :func:`_emit_lcg_fill`."""
    out = []
    state = seed
    for _ in range(n):
        state = _lcg_next(state)
        out.append((state & ((1 << 31) - 1)) % modulo)
    return out


# -- CG: CSR sparse matvec ------------------------------------------------------


def build_cg_kernel(n_rows: int = 64, nnz_per_row: int = 4) -> Module:
    """y = A x for a CSR matrix with fixed row degree; returns sum(y)."""
    if n_rows <= 0 or nnz_per_row <= 0:
        raise WorkloadError("CG needs positive dimensions")
    nnz = n_rows * nnz_per_row
    m = Module("nas-cg-kernel")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    cols = b.call(PTR, "malloc", [Constant(I64, nnz * 8)], name="cols")
    vals = b.call(PTR, "malloc", [Constant(I64, nnz * 8)], name="vals")
    x = b.call(PTR, "malloc", [Constant(I64, n_rows * 8)], name="x")
    _emit_lcg_fill(b, f, cols, Constant(I64, nnz), 1, Constant(I64, n_rows), "fillc")
    _emit_lcg_fill(b, f, vals, Constant(I64, nnz), 2, Constant(I64, 100), "fillv")
    _emit_lcg_fill(b, f, x, Constant(I64, n_rows), 3, Constant(I64, 100), "fillx")

    acc_slot = b.alloca(8, name="acc")
    b.store(0, acc_slot)

    def body(bb: IRBuilder, j: Value, latch: BasicBlock) -> None:
        col = bb.load(I64, bb.gep(cols, j, 8))
        v = bb.load(I64, bb.gep(vals, j, 8))
        xv = bb.load(I64, bb.gep(x, col, 8))  # the gather
        acc = bb.load(I64, acc_slot)
        bb.store(bb.add(acc, bb.mul(v, xv)), acc_slot)

    _counted_loop(b, f, Constant(I64, nnz), "spmv", body)
    b.ret(b.load(I64, acc_slot))
    return m


def cg_reference(n_rows: int = 64, nnz_per_row: int = 4) -> int:
    nnz = n_rows * nnz_per_row
    cols = lcg_fill_reference(nnz, 1, n_rows)
    vals = lcg_fill_reference(nnz, 2, 100)
    x = lcg_fill_reference(n_rows, 3, 100)
    return sum(v * x[c] for v, c in zip(vals, cols))


# -- IS: counting sort ----------------------------------------------------------


def build_is_kernel(n_keys: int = 128, n_buckets: int = 16) -> Module:
    """Histogram n_keys into n_buckets; returns sum(bucket * count)."""
    m = Module("nas-is-kernel")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    keys = b.call(PTR, "malloc", [Constant(I64, n_keys * 8)], name="keys")
    hist = b.call(PTR, "calloc", [Constant(I64, n_buckets), Constant(I64, 8)], name="hist")
    _emit_lcg_fill(b, f, keys, Constant(I64, n_keys), 7, Constant(I64, n_buckets), "fillk")

    def histo(bb: IRBuilder, i: Value, latch: BasicBlock) -> None:
        key = bb.load(I64, bb.gep(keys, i, 8))
        slot = bb.gep(hist, key, 8)  # the scatter
        bb.store(bb.add(bb.load(I64, slot), 1), slot)

    _counted_loop(b, f, Constant(I64, n_keys), "histo", histo)

    acc_slot = b.alloca(8, name="acc")
    b.store(0, acc_slot)

    def weigh(bb: IRBuilder, i: Value, latch: BasicBlock) -> None:
        count = bb.load(I64, bb.gep(hist, i, 8))
        acc = bb.load(I64, acc_slot)
        bb.store(bb.add(acc, bb.mul(i, count)), acc_slot)

    _counted_loop(b, f, Constant(I64, n_buckets), "weigh", weigh)
    b.ret(b.load(I64, acc_slot))
    return m


def is_reference(n_keys: int = 128, n_buckets: int = 16) -> int:
    keys = lcg_fill_reference(n_keys, 7, n_buckets)
    hist = [0] * n_buckets
    for k in keys:
        hist[k] += 1
    return sum(i * c for i, c in enumerate(hist))


# -- MG: 3-point stencil --------------------------------------------------------


def build_mg_kernel(n: int = 256) -> Module:
    """b[i] = a[i-1] + 2 a[i] + a[i+1] over the interior; returns sum(b)."""
    if n < 3:
        raise WorkloadError("MG needs n >= 3")
    m = Module("nas-mg-kernel")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    a = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="a")
    out = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="out")
    _emit_lcg_fill(b, f, a, Constant(I64, n), 11, Constant(I64, 50), "filla")

    def stencil(bb: IRBuilder, i: Value, latch: BasicBlock) -> None:
        i1 = bb.add(i, 1)
        left = bb.load(I64, bb.gep(a, i, 8))
        mid = bb.load(I64, bb.gep(a, i1, 8))
        right = bb.load(I64, bb.gep(a, bb.add(i, 2), 8))
        value = bb.add(bb.add(left, bb.mul(mid, 2)), right)
        bb.store(value, bb.gep(out, i1, 8))

    _counted_loop(b, f, Constant(I64, n - 2), "stencil", stencil)

    acc_slot = b.alloca(8, name="acc")
    b.store(0, acc_slot)

    def reduce(bb: IRBuilder, i: Value, latch: BasicBlock) -> None:
        v = bb.load(I64, bb.gep(out, bb.add(i, 1), 8))
        bb.store(bb.add(bb.load(I64, acc_slot), v), acc_slot)

    _counted_loop(b, f, Constant(I64, n - 2), "reduce", reduce)
    b.ret(b.load(I64, acc_slot))
    return m


def mg_reference(n: int = 256) -> int:
    a = lcg_fill_reference(n, 11, 50)
    return sum(a[i - 1] + 2 * a[i] + a[i + 1] for i in range(1, n - 1))


# -- SP: first-order recurrence sweep ----------------------------------------------


def build_sp_kernel(n: int = 256, c: int = 3) -> Module:
    """a[i] = a[i] - c * a[i-1] forward sweep; returns a[n-1]."""
    if n < 2:
        raise WorkloadError("SP needs n >= 2")
    m = Module("nas-sp-kernel")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    a = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="a")
    _emit_lcg_fill(b, f, a, Constant(I64, n), 13, Constant(I64, 20), "filla")

    def sweep(bb: IRBuilder, i: Value, latch: BasicBlock) -> None:
        i1 = bb.add(i, 1)
        prev = bb.load(I64, bb.gep(a, i, 8))
        cur = bb.load(I64, bb.gep(a, i1, 8))
        bb.store(bb.sub(cur, bb.mul(prev, c)), bb.gep(a, i1, 8))

    _counted_loop(b, f, Constant(I64, n - 1), "sweep", sweep)
    b.ret(b.load(I64, b.gep(a, n - 1, 8)))
    return m


def sp_reference(n: int = 256, c: int = 3) -> int:
    a = lcg_fill_reference(n, 13, 20)
    for i in range(1, n):
        a[i] = _signed((a[i] - c * a[i - 1]) & MASK64)
    return a[n - 1]


# -- FT: column-major nested traversal -----------------------------------------------


def build_ft_kernel(rows: int = 24, cols: int = 24) -> Module:
    """Sum a rows x cols array in column-major order (stride = rows).

    The inner loop's byte stride is ``rows * 8`` — an object density of
    ~1 at any plausible object size, so the cost model refuses to chunk
    it and the naive transform guards every access: the paper's FT
    pathology in miniature.
    """
    if rows < 2 or cols < 2:
        raise WorkloadError("FT needs at least a 2x2 array")
    n = rows * cols
    m = Module("nas-ft-kernel")
    f = m.add_function("main", I64)
    b = IRBuilder(f.add_block("entry"))
    a = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="a")
    _emit_lcg_fill(b, f, a, Constant(I64, n), 17, Constant(I64, 30), "filla")
    acc_slot = b.alloca(8, name="acc")
    b.store(0, acc_slot)

    def outer(bb: IRBuilder, col: Value, outer_latch: BasicBlock) -> None:
        def inner(ibb: IRBuilder, row: Value, latch: BasicBlock) -> None:
            idx = ibb.add(ibb.mul(row, cols), col)  # column-major walk
            v = ibb.load(I64, ibb.gep(a, idx, 8))
            ibb.store(ibb.add(ibb.load(I64, acc_slot), v), acc_slot)

        _counted_loop(bb, f, Constant(I64, rows), f"inner{id(col) % 9973}", inner)
        bb.br(outer_latch)

    _counted_loop(b, f, Constant(I64, cols), "outer", outer)
    b.ret(b.load(I64, acc_slot))
    return m


def ft_reference(rows: int = 24, cols: int = 24) -> int:
    return sum(lcg_fill_reference(rows * cols, 17, 30))


#: name -> (IR builder, Python reference), both zero-arg for defaults.
KERNELS: Dict[str, Tuple[Callable[[], Module], Callable[[], int]]] = {
    "CG": (build_cg_kernel, cg_reference),
    "IS": (build_is_kernel, is_reference),
    "MG": (build_mg_kernel, mg_reference),
    "SP": (build_sp_kernel, sp_reference),
    "FT": (build_ft_kernel, ft_reference),
}
