"""NAS parallel benchmarks (serial C++ versions), far-memory models.

§4.5 / Table 3 / Fig. 17: five kernels (CG, FT, IS, MG, SP) run at a
25 % local-memory constraint.  Two TrackFM-relevant traits differ per
kernel:

* **temporal reuse** — how often a touched page/object is re-touched
  soon (FT's FFT stages have strong reuse, which amortizes Fastswap's
  faults; IS's bucket scatter has almost none);
* **analyzability** — whether TrackFM's loop analysis chunks the hot
  loops (FT's "deeply nested, tight loop structure ... confounds our
  loop analysis"), and how many memory instructions the unoptimized
  NOELLE pipeline sees (Fig. 17b: O1 cuts FT's memory instructions ~6x
  and SP's ~4x).

Besides the cost models, :func:`build_nas_ir` constructs genuine IR for
the kernels in *unoptimized* style (locals in stack slots, operands
re-loaded at every use) so the O1 study runs the real pass pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.ir import IRBuilder, Module
from repro.ir.types import I64, PTR
from repro.ir.values import Constant
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS, GuardKind
from repro.net.backends import make_rdma_backend, make_tcp_backend
from repro.sim.metrics import Metrics
from repro.units import BASE_PAGE, GB, ceil_div

NAS_BODY_CYCLES = 14.0


@dataclass(frozen=True)
class NasBenchmark:
    """One NAS kernel's shape (Table 3 + §4.5 observations)."""

    name: str
    klass: str
    #: Paper working set in GB (Table 3).
    paper_memory_gb: int
    #: Lines of code (Table 3, descriptive only).
    loc: int
    #: Fraction of granule touches that re-hit a recently-used granule.
    temporal_reuse: float
    #: Does TrackFM's loop analysis manage to chunk the hot loops?
    chunkable: bool
    #: Memory-instruction inflation when NOELLE sees unoptimized IR
    #: (Fig. 17b: 6x for FT, 4x for SP; ~1 elsewhere).
    unopt_mem_inflation: float
    #: Passes over the working set (iterative kernels sweep repeatedly).
    passes: int = 3

    def working_set(self, scale_factor: int) -> int:
        return max(1 << 20, self.paper_memory_gb * GB // scale_factor)


#: Table 3's suite with the §4.5 qualitative traits attached.
NAS_SUITE: Tuple[NasBenchmark, ...] = (
    NasBenchmark("CG", "D", 9, 586, temporal_reuse=0.30, chunkable=True, unopt_mem_inflation=1.2),
    NasBenchmark("FT", "C", 6, 756, temporal_reuse=0.80, chunkable=False, unopt_mem_inflation=6.0),
    NasBenchmark("IS", "D", 34, 558, temporal_reuse=0.05, chunkable=True, unopt_mem_inflation=1.1),
    NasBenchmark("MG", "D", 27, 941, temporal_reuse=0.40, chunkable=True, unopt_mem_inflation=1.3),
    NasBenchmark("SP", "D", 12, 2013, temporal_reuse=0.30, chunkable=True, unopt_mem_inflation=4.0),
)


def nas_by_name(name: str) -> NasBenchmark:
    for b in NAS_SUITE:
        if b.name == name:
            return b
    raise WorkloadError(f"unknown NAS benchmark {name!r}")


@dataclass
class NasModel:
    """Cost model for one kernel at one local-memory setting."""

    bench: NasBenchmark
    working_set: int
    object_size: int = BASE_PAGE
    elem_size: int = 8
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    def _accesses_per_pass(self) -> int:
        return max(1, self.working_set // self.elem_size)

    def _effective_resident(self, local_memory: int) -> float:
        base = min(1.0, local_memory / self.working_set)
        reuse = self.bench.temporal_reuse
        return min(1.0, base + reuse * (1.0 - base))

    def run_local(self) -> float:
        return self.bench.passes * self._accesses_per_pass() * NAS_BODY_CYCLES

    def run_fastswap(self, local_memory: int) -> Tuple[float, Metrics]:
        c = self.costs
        metrics = Metrics()
        page = BASE_PAGE
        n = self._accesses_per_pass()
        n_pages = max(1, ceil_div(self.working_set, page))
        resident = self._effective_resident(local_memory)
        misses = int(round(n_pages * (1.0 - resident)))
        cycles = 0.0
        for _ in range(self.bench.passes):
            cycles += n * NAS_BODY_CYCLES
            cycles += misses * (c.fastswap_fault(AccessKind.READ, remote=True) + 2_000.0)
            metrics.major_faults += misses
            metrics.bytes_fetched += misses * page
            metrics.accesses += n
        metrics.cycles = cycles
        return cycles, metrics

    def run_trackfm(
        self, local_memory: int, o1: bool = True
    ) -> Tuple[float, Metrics]:
        c = self.costs
        metrics = Metrics()
        link = make_tcp_backend().link
        inflation = 1.0 if o1 else self.bench.unopt_mem_inflation
        n = int(self._accesses_per_pass() * inflation)
        n_objects = max(1, ceil_div(self.working_set, self.object_size))
        resident = self._effective_resident(local_memory)
        misses = int(round(n_objects * (1.0 - resident)))
        cycles = 0.0
        for _ in range(self.bench.passes):
            cycles += n * NAS_BODY_CYCLES
            if self.bench.chunkable:
                cycles += c.chunk_setup
                cycles += n * c.boundary_check
                cycles += n_objects * c.locality_guard
                cycles += misses * link.wire_cycles(self.object_size)
                metrics.count_guard(GuardKind.BOUNDARY, n)
                metrics.count_guard(GuardKind.LOCALITY, n_objects)
            else:
                fast = max(n - n_objects, 0)
                cycles += fast * c.fast_guard(AccessKind.READ, cached=True)
                cycles += (n_objects - misses) * c.slow_guard_local(
                    AccessKind.READ, cached=True
                )
                cycles += misses * (
                    c.slow_guard_local(AccessKind.READ, cached=False)
                    + link.transfer_cycles(self.object_size)
                )
                metrics.count_guard(GuardKind.FAST, fast)
                metrics.count_guard(GuardKind.SLOW, n_objects)
            metrics.bytes_fetched += misses * self.object_size
            metrics.accesses += n
        metrics.cycles = cycles
        return cycles, metrics

    def slowdown(self, system: str, local_memory: int, o1: bool = True) -> float:
        """Fig. 17's y-axis: cycles / local-only cycles."""
        base = self.run_local()
        if system == "fastswap":
            cycles, _ = self.run_fastswap(local_memory)
        elif system == "trackfm":
            cycles, _ = self.run_trackfm(local_memory, o1=o1)
        else:
            raise WorkloadError(f"unknown system {system!r}")
        return cycles / base


# -- real IR kernels for the O1 study (Fig. 17b) ------------------------------


def _store_local(b: IRBuilder, slot, value) -> None:
    b.store(value, slot)


def build_nas_ir(name: str, n: int = 64, unoptimized: bool = True) -> Module:
    """Build a NAS-kernel-shaped IR module.

    ``unoptimized=True`` emits the style NOELLE sees without O1: every
    scalar lives in a stack slot and is re-loaded at each use, so the
    loop bodies carry several redundant loads/stores per heap access.
    FT's body is emitted with a deeper redundancy factor than SP's,
    mirroring the paper's 6x vs 4x reductions.
    """
    bench = nas_by_name(name)
    del bench  # name validation only; the IR shape is driven by redundancy
    # Per-iteration spill/reload depth: FT's deep nests carry the most
    # temporaries (measured ~6x memory-instruction reduction under O1),
    # SP ~4x, the rest are nearly clean already.
    redundancy = {"FT": 3, "SP": 1}.get(name, 0)
    if not unoptimized:
        redundancy = 0

    m = Module(f"nas-{name.lower()}")
    f = m.add_function("main", I64)
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_ = f.add_block("exit")

    b = IRBuilder(entry)
    data = b.call(PTR, "malloc", [Constant(I64, n * 8)], name="data")
    # Stack slots for the "unoptimized locals" style.
    slots = [b.alloca(8, name=f"slot{i}") for i in range(max(redundancy, 1))]
    for slot in slots:
        b.store(0, slot)
    b.br(header)

    b.set_block(header)
    i = b.phi(I64, name="i")
    acc = b.phi(I64, name="acc")
    cond = b.icmp("slt", i, n)
    b.condbr(cond, body, exit_)

    b.set_block(body)
    if redundancy:
        # Unoptimized style: spill/reload scalars around the heap access.
        reloaded = []
        for slot in slots:
            reloaded.append(b.load(I64, slot))
        bump = reloaded[0]
        for r in reloaded[1:]:
            bump = b.add(bump, r)
        b.store(bump, slots[0])
        extra = b.load(I64, slots[0])
    else:
        extra = Constant(I64, 0)
    addr = b.gep(data, i, 8, name="addr")
    v = b.load(I64, addr, name="v")
    tmp = b.add(v, extra)
    acc2 = b.add(acc, tmp, name="acc2")
    i2 = b.add(i, 1, name="i2")
    b.br(header)
    i.add_incoming(Constant(I64, 0), entry)
    i.add_incoming(i2, body)
    acc.add_incoming(Constant(I64, 0), entry)
    acc.add_incoming(acc2, body)

    b.set_block(exit_)
    b.ret(acc)
    return m
