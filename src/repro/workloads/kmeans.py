"""k-means: the loop-chunking cautionary tale (§4.2, Fig. 8).

The paper runs k-means over 30 M points (1 GB working set) and shows
that applying loop chunking *indiscriminately* slows the program ~4x,
because k-means is built out of short, deeply nested loops: the
per-point distance computation iterates over a handful of dimensions,
re-entering the chunked loop — and paying its setup — once per point.
The profile-guided cost model instead chunks only the long, dense
point-array scans ("103 array pointers [detected], after applying the
cost model only 27 were optimized"), yielding ~2.5x speedup.

Loop structure modelled (per k-means iteration):

* assignment: for each point, for each centroid, a short loop over
  ``dims`` coordinates — ``n_points * k`` entries of a ``dims``-trip
  loop; accesses sweep the point array once with high temporal reuse;
* update: one long sequential scan accumulating per-cluster sums.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS, GuardKind
from repro.net.backends import make_tcp_backend
from repro.sim.metrics import Metrics
from repro.units import ceil_div

#: Distance-kernel base cost per coordinate access (fused mul/add).
KMEANS_BODY_CYCLES = 12.0


class ChunkMode(enum.Enum):
    """Which loops get chunked, mirroring Fig. 8's three lines."""

    #: Naive guards everywhere (the normalization baseline).
    BASELINE = "baseline"
    #: Chunk every candidate loop, including the per-point short loops.
    ALL_LOOPS = "all_loops"
    #: Profile + cost model: chunk only the long point-array scans.
    HIGH_DENSITY = "high_density"


@dataclass
class KMeansWorkload:
    """One k-means configuration (sizes already scaled)."""

    n_points: int
    dims: int = 8
    k: int = 10
    iterations: int = 2
    coord_size: int = 4
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)
    body_cycles: float = KMEANS_BODY_CYCLES

    def __post_init__(self) -> None:
        if min(self.n_points, self.dims, self.k, self.iterations) < 1:
            raise WorkloadError("k-means parameters must be positive")

    @property
    def point_size(self) -> int:
        return self.dims * self.coord_size

    @property
    def working_set(self) -> int:
        return self.n_points * self.point_size

    def accesses_per_iteration(self) -> int:
        # Assignment (k distance loops per point) + update scan.
        return self.n_points * self.dims * (self.k + 1)

    def run(
        self,
        mode: ChunkMode,
        object_size: int,
        local_memory: int,
    ) -> tuple:
        """(cycles, Metrics) for the whole run under one chunk policy."""
        c = self.costs
        metrics = Metrics()
        backend = make_tcp_backend()
        n_objects = max(1, ceil_div(self.working_set, object_size))
        resident = min(1.0, local_memory / self.working_set)
        misses_per_pass = int(round(n_objects * (1.0 - resident)))
        accesses = self.accesses_per_iteration()
        cycles = 0.0

        for _ in range(self.iterations):
            cycles += accesses * self.body_cycles
            if mode is ChunkMode.BASELINE:
                fast = accesses - n_objects
                cycles += fast * c.fast_guard(AccessKind.READ, cached=True)
                cycles += (n_objects - misses_per_pass) * c.slow_guard_local(
                    AccessKind.READ, cached=True
                )
                cycles += misses_per_pass * (
                    c.slow_guard_local(AccessKind.READ, cached=False)
                    + backend.link.transfer_cycles(object_size)
                )
                metrics.count_guard(GuardKind.FAST, fast)
                metrics.count_guard(GuardKind.SLOW, n_objects)
            elif mode is ChunkMode.ALL_LOOPS:
                # The per-point distance loop is chunked too: one chunk
                # setup per point (its loop entry), per k-means pass.
                entries = self.n_points
                cycles += entries * c.chunk_setup
                cycles += accesses * c.boundary_check
                cycles += n_objects * c.locality_guard
                cycles += misses_per_pass * backend.link.wire_cycles(object_size)
                metrics.count_guard(GuardKind.BOUNDARY, accesses)
                metrics.count_guard(GuardKind.LOCALITY, n_objects)
                metrics.prefetches_issued += misses_per_pass
                metrics.prefetches_useful += misses_per_pass
            else:
                # Only the long scans are chunked: one setup per pass for
                # the assignment sweep and one for the update sweep.
                cycles += 2 * c.chunk_setup
                cycles += accesses * c.boundary_check
                cycles += n_objects * c.locality_guard
                cycles += misses_per_pass * backend.link.wire_cycles(object_size)
                metrics.count_guard(GuardKind.BOUNDARY, accesses)
                metrics.count_guard(GuardKind.LOCALITY, n_objects)
                metrics.prefetches_issued += misses_per_pass
                metrics.prefetches_useful += misses_per_pass
            metrics.remote_fetches += misses_per_pass
            metrics.bytes_fetched += misses_per_pass * object_size
            metrics.accesses += accesses

        metrics.cycles = cycles
        return cycles, metrics

    def speedup_vs_baseline(
        self, mode: ChunkMode, object_size: int, local_memory: int
    ) -> float:
        """The Fig. 8 y-axis: baseline cycles / mode cycles."""
        base, _ = self.run(ChunkMode.BASELINE, object_size, local_memory)
        other, _ = self.run(mode, object_size, local_memory)
        if other <= 0:
            return 0.0
        return base / other
