"""Workload generators matching the paper's evaluation (§4).

Each workload reproduces an *access pattern x granularity x locality*
point from the evaluation:

* :mod:`repro.workloads.stream`    — STREAM: sequential, small elements,
  perfect spatial locality (Figs. 7, 10, 11, 12);
* :mod:`repro.workloads.hashmap`   — STL-style hashmap under zipf: tiny
  random accesses, temporal but no spatial locality (Figs. 9, 13);
* :mod:`repro.workloads.kmeans`    — k-means: nested short loops with
  low object density (Fig. 8);
* :mod:`repro.workloads.analytics` — NYC-taxi-style dataframe analytics:
  column scans + low-density aggregations, 31 GB-shaped (Figs. 14, 15);
* :mod:`repro.workloads.memcached` — KV store with USR-style sizes and a
  slab allocator, zipf skew sweep (Fig. 16);
* :mod:`repro.workloads.nas`       — NAS CG/FT/IS/MG/SP kernel models
  plus unoptimized-style IR versions of FT/SP for the O1 study (Fig. 17).

Three post-paper workloads widen the ablation matrix (docs/ablations.md):

* :mod:`repro.workloads.graph`    — pointer-chasing BFS over a seeded
  random graph (CSR in one far arena);
* :mod:`repro.workloads.extsort`  — external sort: partitioned run
  formation + data-dependent k-way merge;
* :mod:`repro.workloads.webcache` — Zipf web-cache trace replayed
  through the sharded serving layer;
* :mod:`repro.workloads.phase`    — dense/sparse phase changes that
  rotate the hot region (exercises the adaptive hybrid's online
  selector, docs/hybrid.md).
"""

from repro.workloads.zipf import ZipfGenerator
from repro.workloads.stream import StreamWorkload, StreamKernel
from repro.workloads.hashmap import HashmapWorkload
from repro.workloads.kmeans import KMeansWorkload
from repro.workloads.dataframe import Column, DataFrame
from repro.workloads.analytics import AnalyticsWorkload
from repro.workloads.memcached import MemcachedWorkload
from repro.workloads.nas import NasBenchmark, NAS_SUITE, build_nas_ir
from repro.workloads.nas_kernels import KERNELS as NAS_KERNELS
from repro.workloads.graph import GraphTraversalWorkload
from repro.workloads.extsort import ExternalSortWorkload
from repro.workloads.webcache import WebCacheConfig, WebCacheWorkload
from repro.workloads.phase import PhaseShiftWorkload

__all__ = [
    "ZipfGenerator",
    "StreamWorkload",
    "StreamKernel",
    "HashmapWorkload",
    "KMeansWorkload",
    "Column",
    "DataFrame",
    "AnalyticsWorkload",
    "MemcachedWorkload",
    "NasBenchmark",
    "NAS_SUITE",
    "build_nas_ir",
    "NAS_KERNELS",
    "GraphTraversalWorkload",
    "ExternalSortWorkload",
    "WebCacheConfig",
    "WebCacheWorkload",
    "PhaseShiftWorkload",
]
