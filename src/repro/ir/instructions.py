"""IR instructions.

The set is the minimal one TrackFM's passes care about: memory
(``alloca``/``load``/``store``/``gep``), integer and float arithmetic,
comparisons, control flow (``br``/``condbr``/``ret``), calls, phis,
selects, and the pointer<->integer casts whose handling §3.2 of the paper
calls out ("even if a pointer is cast to an integer type ... the
resulting load/store will still be properly guarded").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import IRTypeError
from repro.ir.types import IRType, IntType, I1, I64, F64, PTR, VOID
from repro.ir.values import Value, Constant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.basicblock import BasicBlock
    from repro.ir.function import Function


class Instruction(Value):
    """Base class: an instruction is also the SSA value it defines."""

    #: Mnemonic, set by subclasses.
    opcode: str = "?"

    def __init__(self, ty: IRType, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(ty, name)
        self.operands: List[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None
        #: Free-form pass annotations (e.g. "tfm.guarded", "tfm.heap").
        self.metadata: Dict[str, object] = {}

    # -- classification helpers used by analyses ---------------------------

    def is_terminator(self) -> bool:
        return isinstance(self, (Br, CondBr, Ret))

    def is_memory_access(self) -> bool:
        return isinstance(self, (Load, Store))

    def replace_uses_of(self, old: Value, new: Value) -> int:
        """Replace occurrences of ``old`` among this instruction's operands."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def successors(self) -> Tuple["BasicBlock", ...]:
        """Blocks this instruction can transfer control to."""
        return ()

    def render(self) -> str:
        """One-line textual form."""
        ops = ", ".join(op.short() for op in self.operands)
        lhs = f"{self.short()} = " if not self.type.is_void() else ""
        return f"{lhs}{self.opcode} {ops}".rstrip()


class Alloca(Instruction):
    """Stack allocation of ``size_bytes`` bytes; yields a pointer.

    Stack memory is never remotable (§3.1), so the guard pass skips
    pointers whose provenance is an ``alloca``.
    """

    opcode = "alloca"

    def __init__(self, size_bytes: int, name: str = "") -> None:
        if size_bytes <= 0:
            raise IRTypeError("alloca size must be positive")
        super().__init__(PTR, [], name)
        self.size_bytes = size_bytes

    def render(self) -> str:
        return f"{self.short()} = alloca {self.size_bytes}"


class Load(Instruction):
    """Load a value of type ``ty`` from a pointer operand."""

    opcode = "load"

    def __init__(self, ty: IRType, ptr: Value, name: str = "") -> None:
        if not ptr.type.is_pointer():
            raise IRTypeError(f"load requires a pointer, got {ptr.type}")
        if ty.is_void():
            raise IRTypeError("cannot load void")
        super().__init__(ty, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def render(self) -> str:
        return f"{self.short()} = load {self.type}, {self.pointer.short()}"


class Store(Instruction):
    """Store a value through a pointer operand."""

    opcode = "store"

    def __init__(self, value: Value, ptr: Value) -> None:
        if not ptr.type.is_pointer():
            raise IRTypeError(f"store requires a pointer, got {ptr.type}")
        if value.type.is_void():
            raise IRTypeError("cannot store void")
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return f"store {self.value.type} {self.value.short()}, {self.pointer.short()}"


class Gep(Instruction):
    """Pointer arithmetic: ``base + index * elem_size`` (bytes).

    A byte-level get-element-pointer; ``elem_size`` is the stride in
    bytes, carried explicitly because pointers are opaque.
    """

    opcode = "gep"

    def __init__(self, base: Value, index: Value, elem_size: int, name: str = "") -> None:
        if not base.type.is_pointer():
            raise IRTypeError(f"gep base must be a pointer, got {base.type}")
        if not index.type.is_int():
            raise IRTypeError(f"gep index must be an integer, got {index.type}")
        if elem_size <= 0:
            raise IRTypeError("gep element size must be positive")
        super().__init__(PTR, [base, index], name)
        self.elem_size = elem_size

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    def render(self) -> str:
        return (
            f"{self.short()} = gep {self.base.short()}, "
            f"{self.index.short()} x {self.elem_size}"
        )


_INT_BINOPS = {"add", "sub", "mul", "sdiv", "srem", "and", "or", "xor", "shl", "lshr", "ashr"}
_FLOAT_BINOPS = {"fadd", "fsub", "fmul", "fdiv"}


class BinOp(Instruction):
    """Two-operand arithmetic; integer and float flavours."""

    def __init__(self, op: str, a: Value, b: Value, name: str = "") -> None:
        if op in _INT_BINOPS:
            if not (a.type.is_int() and a.type == b.type):
                raise IRTypeError(f"{op} needs matching int operands, got {a.type}/{b.type}")
            ty = a.type
        elif op in _FLOAT_BINOPS:
            if not (a.type.is_float() and b.type.is_float()):
                raise IRTypeError(f"{op} needs f64 operands, got {a.type}/{b.type}")
            ty = F64
        else:
            raise IRTypeError(f"unknown binop {op!r}")
        super().__init__(ty, [a, b], name)
        self.opcode = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


_ICMP_PREDS = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}
_FCMP_PREDS = {"oeq", "one", "olt", "ole", "ogt", "oge"}


class ICmp(Instruction):
    """Integer (or pointer) comparison producing an i1."""

    opcode = "icmp"

    def __init__(self, pred: str, a: Value, b: Value, name: str = "") -> None:
        if pred not in _ICMP_PREDS:
            raise IRTypeError(f"unknown icmp predicate {pred!r}")
        ok = (a.type.is_int() and a.type == b.type) or (
            a.type.is_pointer() and b.type.is_pointer()
        )
        if not ok:
            raise IRTypeError(f"icmp needs matching int/ptr operands, got {a.type}/{b.type}")
        super().__init__(I1, [a, b], name)
        self.pred = pred

    def render(self) -> str:
        a, b = self.operands
        return f"{self.short()} = icmp {self.pred} {a.short()}, {b.short()}"


class FCmp(Instruction):
    """Float comparison producing an i1."""

    opcode = "fcmp"

    def __init__(self, pred: str, a: Value, b: Value, name: str = "") -> None:
        if pred not in _FCMP_PREDS:
            raise IRTypeError(f"unknown fcmp predicate {pred!r}")
        if not (a.type.is_float() and b.type.is_float()):
            raise IRTypeError("fcmp needs f64 operands")
        super().__init__(I1, [a, b], name)
        self.pred = pred

    def render(self) -> str:
        a, b = self.operands
        return f"{self.short()} = fcmp {self.pred} {a.short()}, {b.short()}"


class Br(Instruction):
    """Unconditional branch."""

    opcode = "br"

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID, [])
        self.target = target

    def successors(self) -> Tuple["BasicBlock", ...]:
        return (self.target,)

    def render(self) -> str:
        return f"br label %{self.target.name}"


class CondBr(Instruction):
    """Conditional branch on an i1."""

    opcode = "condbr"

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock") -> None:
        if not (cond.type.is_int() and cond.type == I1):
            raise IRTypeError(f"condbr condition must be i1, got {cond.type}")
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def condition(self) -> Value:
        return self.operands[0]

    def successors(self) -> Tuple["BasicBlock", ...]:
        return (self.if_true, self.if_false)

    def render(self) -> str:
        return (
            f"condbr {self.condition.short()}, "
            f"label %{self.if_true.name}, label %{self.if_false.name}"
        )


class Ret(Instruction):
    """Function return, with or without a value."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def render(self) -> str:
        if self.value is None:
            return "ret void"
        return f"ret {self.value.type} {self.value.short()}"


class Call(Instruction):
    """Direct call to a named function.

    ``callee`` is a name resolved at execution time against the module's
    functions and the runtime's registered intrinsics; this mirrors how
    the TrackFM passes rewrite ``malloc`` -> ``tfm_malloc`` by name
    (the libc transformation pass, §3.1).
    """

    opcode = "call"

    def __init__(self, ret_ty: IRType, callee: str, args: Sequence[Value], name: str = "") -> None:
        if not callee:
            raise IRTypeError("call requires a callee name")
        super().__init__(ret_ty, list(args), name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return self.operands

    def render(self) -> str:
        args = ", ".join(a.short() for a in self.operands)
        lhs = f"{self.short()} = " if not self.type.is_void() else ""
        return f"{lhs}call {self.type} @{self.callee}({args})"


class Phi(Instruction):
    """SSA phi node: value depends on the predecessor we arrived from."""

    opcode = "phi"

    def __init__(self, ty: IRType, name: str = "") -> None:
        if ty.is_void():
            raise IRTypeError("phi cannot be void")
        super().__init__(ty, [], name)
        self.incoming: List[Tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise IRTypeError(
                f"phi of {self.type} got incoming {value.type} from %{block.name}"
            )
        self.incoming.append((value, block))
        self.operands.append(value)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise IRTypeError(f"phi %{self.name} has no incoming from %{block.name}")

    def replace_uses_of(self, old: Value, new: Value) -> int:
        count = super().replace_uses_of(old, new)
        self.incoming = [
            (new if value is old else value, blk) for value, blk in self.incoming
        ]
        return count

    def render(self) -> str:
        pairs = ", ".join(f"[{v.short()}, %{b.name}]" for v, b in self.incoming)
        return f"{self.short()} = phi {self.type} {pairs}"


class Select(Instruction):
    """``cond ? a : b`` without a branch."""

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name: str = "") -> None:
        if cond.type != I1:
            raise IRTypeError("select condition must be i1")
        if a.type != b.type:
            raise IRTypeError(f"select arms disagree: {a.type} vs {b.type}")
        super().__init__(a.type, [cond, a, b], name)


class Cast(Instruction):
    """Integer width change (trunc/zext/sext) or int<->float conversion."""

    VALID = {"trunc", "zext", "sext", "sitofp", "fptosi"}

    def __init__(self, op: str, value: Value, to: IRType, name: str = "") -> None:
        if op not in self.VALID:
            raise IRTypeError(f"unknown cast {op!r}")
        super().__init__(to, [value], name)
        self.opcode = op

    def render(self) -> str:
        v = self.operands[0]
        return f"{self.short()} = {self.opcode} {v.type} {v.short()} to {self.type}"


class PtrToInt(Instruction):
    """Reinterpret a pointer as an i64 (offset math on TrackFM pointers)."""

    opcode = "ptrtoint"

    def __init__(self, ptr: Value, name: str = "") -> None:
        if not ptr.type.is_pointer():
            raise IRTypeError("ptrtoint needs a pointer")
        super().__init__(I64, [ptr], name)


class IntToPtr(Instruction):
    """Reinterpret an i64 as a pointer."""

    opcode = "inttoptr"

    def __init__(self, value: Value, name: str = "") -> None:
        if not (value.type.is_int() and value.type == I64):
            raise IRTypeError("inttoptr needs an i64")
        super().__init__(PTR, [value], name)


TERMINATORS = (Br, CondBr, Ret)
