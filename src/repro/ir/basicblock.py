"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.errors import IRError
from repro.ir.instructions import Instruction, Phi

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.function import Function


class BasicBlock:
    """An ordered list of instructions with a single terminator at the end."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structure ----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        """Append ``inst``; refuses to add past a terminator."""
        if self.terminator is not None:
            raise IRError(f"block %{self.name} already has a terminator")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert ``inst`` at ``index`` (used by transformation passes)."""
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``anchor`` in this block."""
        idx = self.index_of(anchor)
        return self.insert(idx, inst)

    def remove(self, inst: Instruction) -> None:
        """Remove ``inst`` from this block."""
        self.instructions.remove(inst)
        inst.parent = None

    def index_of(self, inst: Instruction) -> int:
        for i, existing in enumerate(self.instructions):
            if existing is inst:
                return i
        raise IRError(f"instruction not in block %{self.name}: {inst.render()}")

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or None while under construction."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def phis(self) -> List[Phi]:
        """The leading phi nodes of this block."""
        result: List[Phi] = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi_index(self) -> int:
        """Index of the first non-phi instruction (insertion point)."""
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def successors(self) -> tuple:
        term = self.terminator
        return term.successors() if term is not None else ()

    # -- dunder -------------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(list(self.instructions))

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"
