"""IR type system: integers, one float width, opaque pointers, void.

Pointers are opaque (as in modern LLVM): the pointee type is not part of
the pointer type.  Element sizes therefore travel explicitly on ``gep``
and ``load``/``store`` instructions, which keeps the guard passes honest
about access widths.
"""

from __future__ import annotations

from repro.errors import IRTypeError


class IRType:
    """Base class for IR types.  Types are singletons; compare with is/==."""

    def size_bytes(self) -> int:
        """Byte width of a value of this type (0 for void)."""
        raise NotImplementedError

    def is_int(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(other, "__dict__", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    def __repr__(self) -> str:
        return str(self)


class IntType(IRType):
    """An integer of ``bits`` width (1, 8, 16, 32 or 64)."""

    VALID_WIDTHS = (1, 8, 16, 32, 64)

    def __init__(self, bits: int) -> None:
        if bits not in self.VALID_WIDTHS:
            raise IRTypeError(f"unsupported integer width i{bits}")
        self.bits = bits

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(IRType):
    """A 64-bit IEEE double (the only float width we need)."""

    def size_bytes(self) -> int:
        return 8

    def __str__(self) -> str:
        return "f64"


class PointerType(IRType):
    """An opaque pointer; 8 bytes on our x86_64-like machine."""

    def size_bytes(self) -> int:
        return 8

    def __str__(self) -> str:
        return "ptr"


class VoidType(IRType):
    """The absence of a value (function returns only)."""

    def size_bytes(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType()
PTR = PointerType()
VOID = VoidType()


def common_int(a: IRType, b: IRType) -> IntType:
    """Require both types to be the same integer type and return it."""
    if not (a.is_int() and b.is_int() and a == b):
        raise IRTypeError(f"expected matching integer types, got {a} and {b}")
    assert isinstance(a, IntType)
    return a
