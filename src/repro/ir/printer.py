"""Textual dump of IR, close to LLVM's .ll syntax (read-only)."""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.module import Module


def print_function(func: Function) -> str:
    """Render a function to text."""
    args = ", ".join(f"{a.type} %{a.name}" for a in func.args)
    header = f"define {func.ret_type} @{func.name}({args})"
    if func.is_declaration:
        return f"declare {func.ret_type} @{func.name}({args})"
    lines: List[str] = [header + " {"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            note = ""
            if inst.metadata:
                keys = ", ".join(sorted(str(k) for k in inst.metadata))
                note = f"  ; !{{{keys}}}"
            lines.append(f"  {inst.render()}{note}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    """Render a whole module to text."""
    parts: List[str] = [f"; module {module.name}"]
    for g in module.globals():
        parts.append(f"@{g.name} = global [{g.size_bytes} x i8]")
    for func in module.functions():
        parts.append(print_function(func))
    return "\n\n".join(parts) + "\n"
