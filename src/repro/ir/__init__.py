"""A small typed IR standing in for LLVM bitcode.

TrackFM's passes work at the LLVM middle end on loads, stores, pointer
arithmetic and loops.  This package provides exactly those constructs:
modules of functions, functions of basic blocks, blocks of typed
instructions in (pruned) SSA form, plus a builder, a verifier and a
printer.  The interpreter that executes this IR lives in
:mod:`repro.sim.interpreter` so the IR itself stays runtime-agnostic.
"""

from repro.ir.types import (
    IRType,
    IntType,
    FloatType,
    PointerType,
    VoidType,
    I1,
    I8,
    I32,
    I64,
    F64,
    PTR,
    VOID,
)
from repro.ir.values import Value, Constant, Argument, UndefValue
from repro.ir.instructions import (
    Instruction,
    Alloca,
    Load,
    Store,
    Gep,
    BinOp,
    ICmp,
    FCmp,
    Br,
    CondBr,
    Ret,
    Call,
    Phi,
    Select,
    PtrToInt,
    IntToPtr,
    Cast,
    TERMINATORS,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify_module, verify_function
from repro.ir.printer import print_module, print_function
from repro.ir.parser import parse_module

__all__ = [
    "IRType",
    "IntType",
    "FloatType",
    "PointerType",
    "VoidType",
    "I1",
    "I8",
    "I32",
    "I64",
    "F64",
    "PTR",
    "VOID",
    "Value",
    "Constant",
    "Argument",
    "UndefValue",
    "Instruction",
    "Alloca",
    "Load",
    "Store",
    "Gep",
    "BinOp",
    "ICmp",
    "FCmp",
    "Br",
    "CondBr",
    "Ret",
    "Call",
    "Phi",
    "Select",
    "PtrToInt",
    "IntToPtr",
    "Cast",
    "TERMINATORS",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "verify_module",
    "verify_function",
    "print_module",
    "print_function",
    "parse_module",
]
