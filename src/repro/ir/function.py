"""Functions: argument lists plus an ordered set of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import IRType
from repro.ir.values import Argument

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.module import Module


class Function:
    """A function with typed arguments, a return type and basic blocks.

    Declarations (``is_declaration == True``) have no blocks and are
    resolved by the interpreter against runtime intrinsics — this is how
    libc entry points like ``malloc`` appear before the libc
    transformation pass rewrites calls to them.
    """

    def __init__(
        self,
        name: str,
        ret_type: IRType,
        arg_types: Sequence[IRType] = (),
        arg_names: Optional[Sequence[str]] = None,
        parent: Optional["Module"] = None,
    ) -> None:
        if not name:
            raise IRError("function needs a name")
        self.name = name
        self.ret_type = ret_type
        self.parent = parent
        names = list(arg_names) if arg_names is not None else [
            f"arg{i}" for i in range(len(arg_types))
        ]
        if len(names) != len(arg_types):
            raise IRError("arg_names and arg_types length mismatch")
        self.args: List[Argument] = [
            Argument(ty, nm, i) for i, (ty, nm) in enumerate(zip(arg_types, names))
        ]
        self.blocks: List[BasicBlock] = []
        self._name_counter = 0
        #: Free-form pass annotations (e.g. "tfm.runtime_initialized").
        self.metadata: Dict[str, object] = {}

    # -- construction ---------------------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        """Create and append a new basic block with a unique name."""
        if not name:
            name = self.unique_name("bb")
        if any(b.name == name for b in self.blocks):
            name = self.unique_name(name)
        block = BasicBlock(name, parent=self)
        self.blocks.append(block)
        return block

    def insert_block_after(self, anchor: BasicBlock, name: str = "") -> BasicBlock:
        """Create a block placed right after ``anchor`` in layout order."""
        block = self.add_block(name)
        self.blocks.remove(block)
        idx = self.blocks.index(anchor)
        self.blocks.insert(idx + 1, block)
        return block

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise IRError(f"no block %{name} in @{self.name}")

    def unique_name(self, prefix: str = "v") -> str:
        """Generate a fresh SSA/block name within this function."""
        self._name_counter += 1
        return f"{prefix}.{self._name_counter}"

    # -- traversal --------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in layout order (snapshot; safe to mutate)."""
        for block in list(self.blocks):
            for inst in list(block.instructions):
                yield inst

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def memory_access_count(self) -> int:
        """Loads + stores, the quantity §4.6's code-size growth tracks."""
        return sum(1 for i in self.instructions() if i.is_memory_access())

    def replace_all_uses(self, old, new) -> int:
        """Replace ``old`` with ``new`` across the whole function body."""
        count = 0
        for inst in self.instructions():
            count += inst.replace_uses_of(old, new)
        return count

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name} ({len(self.blocks)} blocks)>"
