"""Modules: a named collection of functions plus global byte buffers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.types import IRType


class GlobalVariable:
    """A module-level byte buffer (never remotable, like stack memory)."""

    def __init__(self, name: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise IRError("global size must be positive")
        self.name = name
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return f"<Global @{self.name} ({self.size_bytes}B)>"


class Module:
    """Top-level IR container, analogous to one LLVM bitcode module.

    With WLLVM the paper links whole applications into a single bitcode
    module before running the TrackFM passes; we mirror that: one Module
    is the unit of compilation.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self._functions: Dict[str, Function] = {}
        self._globals: Dict[str, GlobalVariable] = {}
        #: Pre-decode cache (see :mod:`repro.sim.decode`).  ``decode_epoch``
        #: stamps each decoded form; :meth:`invalidate_decode` bumps it.
        self.decode_epoch: int = 0
        self._decoded_cache = None

    # -- decode cache ---------------------------------------------------

    def invalidate_decode(self) -> None:
        """Drop the cached pre-decoded form (after any IR mutation).

        The :class:`~repro.compiler.pass_manager.PassManager` calls this
        after every pass; code that mutates IR outside a pass pipeline
        should call it directly before re-interpreting.
        """
        self.decode_epoch += 1
        self._decoded_cache = None

    # -- functions ----------------------------------------------------------

    def add_function(
        self,
        name: str,
        ret_type: IRType,
        arg_types: Sequence[IRType] = (),
        arg_names: Optional[Sequence[str]] = None,
    ) -> Function:
        """Create a new (empty) function definition/declaration."""
        if name in self._functions:
            raise IRError(f"duplicate function @{name}")
        func = Function(name, ret_type, arg_types, arg_names, parent=self)
        self._functions[name] = func
        return func

    def declare_function(
        self, name: str, ret_type: IRType, arg_types: Sequence[IRType] = ()
    ) -> Function:
        """Declare an external function (no body); idempotent."""
        existing = self._functions.get(name)
        if existing is not None:
            return existing
        return self.add_function(name, ret_type, arg_types)

    def get_function(self, name: str) -> Function:
        func = self._functions.get(name)
        if func is None:
            raise IRError(f"no function @{name} in module {self.name}")
        return func

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def functions(self) -> List[Function]:
        return list(self._functions.values())

    def defined_functions(self) -> List[Function]:
        return [f for f in self._functions.values() if not f.is_declaration]

    # -- globals --------------------------------------------------------

    def add_global(self, name: str, size_bytes: int) -> GlobalVariable:
        if name in self._globals:
            raise IRError(f"duplicate global @{name}")
        g = GlobalVariable(name, size_bytes)
        self._globals[name] = g
        return g

    def globals(self) -> List[GlobalVariable]:
        return list(self._globals.values())

    def get_global(self, name: str) -> GlobalVariable:
        g = self._globals.get(name)
        if g is None:
            raise IRError(f"no global @{name}")
        return g

    # -- stats ----------------------------------------------------------

    def instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.defined_functions())

    def memory_access_count(self) -> int:
        return sum(f.memory_access_count() for f in self.defined_functions())

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions())

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self._functions)} functions)>"
