"""Parse the textual IR emitted by :mod:`repro.ir.printer`.

Supports the full instruction set the printer produces, so
``parse_module(print_module(m))`` round-trips any module this library
builds (structure-equal, not identity-equal).  Useful for writing test
programs as text and for diffing transformed IR.

Grammar (line oriented)::

    ; comments run to end of line
    @name = global [N x i8]
    declare <ty> @name(<ty> %a, ...)
    define <ty> @name(<ty> %a, ...) {
    label:
      %x = <instruction>
      <instruction>
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Ret,
    Select,
    Store,
    _FLOAT_BINOPS,
    _INT_BINOPS,
)
from repro.ir.module import Module
from repro.ir.types import F64, I1, I8, I16, I32, I64, IRType, PTR, VOID
from repro.ir.values import Constant, Value

_TYPES: Dict[str, IRType] = {
    "i1": I1,
    "i8": I8,
    "i16": I16,
    "i32": I32,
    "i64": I64,
    "f64": F64,
    "ptr": PTR,
    "void": VOID,
}

_DEFINE_RE = re.compile(r"^(define|declare)\s+(\S+)\s+@([\w.$-]+)\((.*)\)\s*(\{)?\s*$")
_GLOBAL_RE = re.compile(r"^@([\w.$-]+)\s*=\s*global\s*\[(\d+)\s*x\s*i8\]\s*$")
_LABEL_RE = re.compile(r"^([\w.$-]+):\s*$")
_ASSIGN_RE = re.compile(r"^%([\w.$-]+)\s*=\s*(.*)$")


class _PendingPhi:
    """A phi whose incoming values are resolved after all blocks parse."""

    def __init__(self, phi: Phi, pairs: List[Tuple[str, str]]) -> None:
        self.phi = phi
        self.pairs = pairs


class _FunctionParser:
    def __init__(self, module: Module, func: Function) -> None:
        self.module = module
        self.func = func
        self.values: Dict[str, Value] = {a.name: a for a in func.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.current: Optional[BasicBlock] = None
        self.pending_phis: List[_PendingPhi] = []
        self.pending_branches: List[Tuple[object, List[str]]] = []

    # -- small helpers ----------------------------------------------------

    def block(self, name: str) -> BasicBlock:
        existing = self.blocks.get(name)
        if existing is not None:
            return existing
        blk = self.func.add_block(name)
        self.blocks[name] = blk
        return blk

    def ty(self, token: str) -> IRType:
        t = _TYPES.get(token)
        if t is None:
            raise IRError(f"unknown type {token!r}")
        return t

    def operand(self, token: str, ty: Optional[IRType] = None) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            value = self.values.get(name)
            if value is None:
                raise IRError(f"use of undefined value %{name}")
            return value
        if token == "null":
            return Constant(PTR, 0)
        if token in ("true", "false"):
            return Constant(I1, 1 if token == "true" else 0)
        if re.fullmatch(r"-?\d+\.\d+(e[+-]?\d+)?", token):
            return Constant(F64, float(token))
        if re.fullmatch(r"-?\d+", token):
            return Constant(ty if ty is not None and ty.is_int() else I64, int(token))
        raise IRError(f"cannot parse operand {token!r}")

    def define(self, name: str, value: Value) -> None:
        value.name = name
        self.values[name] = value

    def emit(self, inst) -> None:
        if self.current is None:
            raise IRError("instruction outside a block")
        self.current.append(inst)

    # -- instruction parsing ---------------------------------------------

    def parse_line(self, line: str) -> None:
        label = _LABEL_RE.match(line)
        if label:
            self.current = self.block(label.group(1))
            return
        assign = _ASSIGN_RE.match(line)
        if assign:
            name, rest = assign.group(1), assign.group(2).strip()
            inst = self.parse_value_inst(rest)
            self.define(name, inst)
            if isinstance(inst, Phi):
                idx = self.current.first_non_phi_index()
                self.current.insert(idx, inst)
                inst.parent = self.current
            else:
                self.emit(inst)
            return
        self.parse_void_inst(line.strip())

    def parse_value_inst(self, text: str):
        op, _, rest = text.partition(" ")
        rest = rest.strip()
        if op == "alloca":
            return Alloca(int(rest))
        if op == "load":
            ty_tok, ptr_tok = (t.strip() for t in rest.split(",", 1))
            return Load(self.ty(ty_tok), self.operand(ptr_tok))
        if op == "gep":
            m = re.match(r"^(\S+),\s*(\S+)\s+x\s+(\d+)$", rest)
            if not m:
                raise IRError(f"malformed gep: {rest!r}")
            base_tok, idx_tok, size_tok = m.groups()
            return Gep(self.operand(base_tok), self.operand(idx_tok, I64), int(size_tok))
        if op in _INT_BINOPS or op in _FLOAT_BINOPS:
            a_tok, b_tok = (t.strip() for t in rest.split(",", 1))
            is_float = op in _FLOAT_BINOPS
            a = self.operand(a_tok, F64 if is_float else I64)
            ty_hint = a.type if a.type.is_int() else I64
            b = self.operand(b_tok, F64 if is_float else ty_hint)
            if isinstance(a, Constant) and not isinstance(b, Constant) and a.type != b.type and not is_float:
                a = Constant(b.type, int(a.value))
            if isinstance(b, Constant) and not isinstance(a, Constant) and b.type != a.type and not is_float:
                b = Constant(a.type, int(b.value))
            return BinOp(op, a, b)
        if op == "icmp":
            pred, _, ops = rest.partition(" ")
            a_tok, b_tok = (t.strip() for t in ops.split(",", 1))
            a = self.operand(a_tok)
            b = self.operand(b_tok, a.type if a.type.is_int() else I64)
            if isinstance(a, Constant) and not isinstance(b, Constant) and a.type != b.type:
                a = Constant(b.type, int(a.value))
            if isinstance(b, Constant) and not isinstance(a, Constant) and b.type != a.type and b.type.is_int() and a.type.is_int():
                b = Constant(a.type, int(b.value))
            return ICmp(pred, a, b)
        if op == "fcmp":
            pred, _, ops = rest.partition(" ")
            a_tok, b_tok = (t.strip() for t in ops.split(",", 1))
            return FCmp(pred, self.operand(a_tok, F64), self.operand(b_tok, F64))
        if op == "phi":
            ty_tok, _, pairs_text = rest.partition(" ")
            phi = Phi(self.ty(ty_tok))
            pairs = re.findall(r"\[([^,\]]+),\s*%([\w.$-]+)\]", pairs_text)
            self.pending_phis.append(
                _PendingPhi(phi, [(v.strip(), b) for v, b in pairs])
            )
            return phi
        if op == "call":
            return self.parse_call(rest)
        if op == "select":
            c_tok, a_tok, b_tok = (t.strip() for t in rest.split(",", 2))
            cond = self.operand(c_tok, I1)
            a = self.operand(a_tok)
            b = self.operand(b_tok, a.type)
            return Select(cond, a, b)
        if op == "ptrtoint":
            return PtrToInt(self.operand(rest))
        if op == "inttoptr":
            return IntToPtr(self.operand(rest, I64))
        if op in Cast.VALID:
            m = re.match(r"^(\S+)\s+(\S+)\s+to\s+(\S+)$", rest)
            if not m:
                raise IRError(f"malformed cast: {text!r}")
            src_ty, val_tok, dst_ty = m.groups()
            return Cast(op, self.operand(val_tok, self.ty(src_ty)), self.ty(dst_ty))
        raise IRError(f"unknown value instruction {text!r}")

    def parse_call(self, rest: str) -> Call:
        m = re.match(r"^(\S+)\s+@([\w.$-]+)\((.*)\)$", rest)
        if not m:
            raise IRError(f"malformed call: {rest!r}")
        ty_tok, callee, args_text = m.groups()
        args = []
        if args_text.strip():
            for tok in self._split_args(args_text):
                args.append(self.operand(tok))
        return Call(self.ty(ty_tok), callee, args)

    @staticmethod
    def _split_args(text: str) -> List[str]:
        return [t.strip() for t in text.split(",") if t.strip()]

    def parse_void_inst(self, text: str) -> None:
        if text.startswith("store "):
            body = text[len("store "):]
            lhs, ptr_tok = (t.strip() for t in body.rsplit(",", 1))
            ty_tok, _, val_tok = lhs.partition(" ")
            value = self.operand(val_tok.strip(), self.ty(ty_tok))
            self.emit(Store(value, self.operand(ptr_tok)))
            return
        if text.startswith("br "):
            m = re.match(r"^br label %([\w.$-]+)$", text)
            if not m:
                raise IRError(f"malformed br: {text!r}")
            self.emit(Br(self.block(m.group(1))))
            return
        if text.startswith("condbr "):
            m = re.match(
                r"^condbr (\S+), label %([\w.$-]+), label %([\w.$-]+)$", text
            )
            if not m:
                raise IRError(f"malformed condbr: {text!r}")
            cond = self.operand(m.group(1), I1)
            self.emit(CondBr(cond, self.block(m.group(2)), self.block(m.group(3))))
            return
        if text == "ret void":
            self.emit(Ret())
            return
        if text.startswith("ret "):
            ty_tok, _, val_tok = text[len("ret "):].partition(" ")
            self.emit(Ret(self.operand(val_tok.strip(), self.ty(ty_tok))))
            return
        if text.startswith("call "):
            self.emit(self.parse_call(text[len("call "):]))
            return
        raise IRError(f"unknown instruction {text!r}")

    def finalize(self) -> None:
        for pending in self.pending_phis:
            for val_tok, block_name in pending.pairs:
                block = self.blocks.get(block_name)
                if block is None:
                    raise IRError(f"phi references unknown block %{block_name}")
                pending.phi.add_incoming(
                    self.operand(val_tok, pending.phi.type), block
                )


def _strip(line: str) -> str:
    """Drop comments and surrounding whitespace."""
    if ";" in line:
        line = line[: line.index(";")]
    return line.strip()


def parse_module(text: str, name: str = "parsed") -> Module:
    """Parse printer-format IR text into a fresh module."""
    module = Module(name)
    lines = [l for l in (_strip(raw) for raw in text.splitlines())]
    i = 0
    while i < len(lines):
        line = lines[i]
        i += 1
        if not line:
            continue
        g = _GLOBAL_RE.match(line)
        if g:
            module.add_global(g.group(1), int(g.group(2)))
            continue
        d = _DEFINE_RE.match(line)
        if d:
            kind, ret_tok, fname, args_text, brace = d.groups()
            arg_types: List[IRType] = []
            arg_names: List[str] = []
            if args_text.strip():
                for arg in args_text.split(","):
                    ty_tok, _, nm = arg.strip().partition(" ")
                    arg_types.append(_TYPES[ty_tok])
                    arg_names.append(nm.lstrip("%") or f"arg{len(arg_names)}")
            func = module.add_function(
                fname, _TYPES[ret_tok], arg_types, arg_names
            )
            if kind == "declare":
                continue
            if not brace:
                raise IRError(f"define without body: {line!r}")
            fp = _FunctionParser(module, func)
            while i < len(lines):
                body_line = lines[i]
                i += 1
                if body_line == "}":
                    break
                if not body_line:
                    continue
                fp.parse_line(body_line)
            else:
                raise IRError(f"unterminated function @{fname}")
            fp.finalize()
            continue
        raise IRError(f"cannot parse top-level line: {line!r}")
    return module
