"""IR values: the SSA names instructions produce and consume."""

from __future__ import annotations

from typing import Optional

from repro.errors import IRTypeError
from repro.ir.types import IRType, IntType, F64, PTR


class Value:
    """Anything an instruction can use as an operand."""

    def __init__(self, ty: IRType, name: str = "") -> None:
        self.type = ty
        self.name = name

    def short(self) -> str:
        """Operand-position rendering, e.g. ``%x`` or ``42``."""
        return f"%{self.name}" if self.name else "%<anon>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """An immediate integer, float or null-pointer constant."""

    def __init__(self, ty: IRType, value) -> None:
        super().__init__(ty, name="")
        if ty.is_int():
            if not isinstance(value, int):
                raise IRTypeError(f"integer constant needs int, got {value!r}")
            assert isinstance(ty, IntType)
            # Wrap into the type's two's-complement range so IR constants
            # behave like machine integers.
            mask = (1 << ty.bits) - 1
            wrapped = value & mask
            if wrapped >= (1 << (ty.bits - 1)) and ty.bits > 1:
                wrapped -= 1 << ty.bits
            value = wrapped
        elif ty.is_float():
            value = float(value)
        elif ty.is_pointer():
            if value != 0:
                raise IRTypeError("pointer constants must be null (0)")
        else:
            raise IRTypeError(f"cannot build a constant of type {ty}")
        self.value = value

    def short(self) -> str:
        if self.type.is_pointer():
            return "null"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, ty: IRType, name: str, index: int) -> None:
        super().__init__(ty, name)
        self.index = index


class UndefValue(Value):
    """An undefined value (used for unreachable phi inputs)."""

    def short(self) -> str:
        return "undef"


def const_int(value: int, ty: IntType) -> Constant:
    """Shorthand for an integer constant."""
    return Constant(ty, value)


def const_f64(value: float) -> Constant:
    """Shorthand for a double constant."""
    return Constant(F64, value)


def null_ptr() -> Constant:
    """The null pointer constant."""
    return Constant(PTR, 0)
