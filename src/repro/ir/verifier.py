"""IR structural verifier.

Checks the invariants the passes and the interpreter rely on:

* every reachable block ends in exactly one terminator, which is its
  last instruction;
* phi nodes appear only at the top of a block, and their incoming edges
  exactly match the block's CFG predecessors;
* branch targets belong to the same function;
* instruction operands are defined in the same function (or are
  constants/arguments);
* call instructions name functions that exist in the module or are
  conventionally-external (intrinsics are allowed through a whitelist
  prefix check).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import IRVerifyError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Br, Call, CondBr, Instruction, Phi
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, UndefValue, Value

#: Calls whose callees need not be defined in the module: runtime
#: intrinsics injected by the TrackFM passes and the libc surface the
#: interpreter provides natively.
INTRINSIC_PREFIXES = ("tfm_", "aifm_", "llvm.", "global_addr.")
EXTERNAL_BUILTINS = {
    "malloc",
    "calloc",
    "realloc",
    "free",
    "memcpy",
    "memset",
    "print_i64",
    "print_f64",
    "abort",
}


def _is_external_ok(name: str) -> bool:
    if name in EXTERNAL_BUILTINS:
        return True
    return any(name.startswith(p) for p in INTRINSIC_PREFIXES)


def verify_function(func: Function) -> None:
    """Raise :class:`IRVerifyError` on the first violation found."""
    if func.is_declaration:
        return
    blocks: Set[BasicBlock] = set(func.blocks)
    if not func.blocks:
        raise IRVerifyError(f"@{func.name}: no blocks")

    # Map each value to its defining block for the domination-lite check.
    defined_in: Dict[Value, BasicBlock] = {}
    for block in func.blocks:
        seen_non_phi = False
        term = block.terminator
        if term is None:
            raise IRVerifyError(f"@{func.name} %{block.name}: missing terminator")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator() and i != len(block.instructions) - 1:
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: terminator not last "
                    f"({inst.render()})"
                )
            if isinstance(inst, Phi):
                if seen_non_phi:
                    raise IRVerifyError(
                        f"@{func.name} %{block.name}: phi after non-phi "
                        f"({inst.render()})"
                    )
            else:
                seen_non_phi = True
            if inst.parent is not block:
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: instruction parent link broken"
                )
            defined_in[inst] = block

    # CFG edges and predecessor map.
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            if succ not in blocks:
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: branch to foreign block %{succ.name}"
                )
            preds[succ].append(block)

    arg_set = set(func.args)
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                incoming_blocks = [b for _, b in inst.incoming]
                if set(incoming_blocks) != set(preds[block]):
                    raise IRVerifyError(
                        f"@{func.name} %{block.name}: phi %{inst.name} edges "
                        f"{sorted(b.name for b in incoming_blocks)} != preds "
                        f"{sorted(b.name for b in preds[block])}"
                    )
                if len(incoming_blocks) != len(set(incoming_blocks)):
                    raise IRVerifyError(
                        f"@{func.name} %{block.name}: phi %{inst.name} duplicate edges"
                    )
            for op in inst.operands:
                if isinstance(op, (Constant, UndefValue)):
                    continue
                if isinstance(op, Argument):
                    if op not in arg_set:
                        raise IRVerifyError(
                            f"@{func.name}: foreign argument %{op.name} used"
                        )
                    continue
                if isinstance(op, Instruction):
                    if op not in defined_in:
                        raise IRVerifyError(
                            f"@{func.name} %{block.name}: use of value %{op.name} "
                            "not defined in this function"
                        )
                    continue
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: unknown operand kind {op!r}"
                )
            if isinstance(inst, Call):
                module = func.parent
                if module is not None and not module.has_function(inst.callee):
                    if not _is_external_ok(inst.callee):
                        raise IRVerifyError(
                            f"@{func.name}: call to unknown @{inst.callee}"
                        )


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    for func in module.functions():
        verify_function(func)
