"""IR structural verifier.

Checks the invariants the passes and the interpreter rely on:

* every reachable block ends in exactly one terminator, which is its
  last instruction;
* phi nodes appear only at the top of a block, and their incoming edges
  exactly match the block's CFG predecessors *as a multiset* — a
  predecessor reached along two edges (e.g. a condbr whose arms both
  target the block) must contribute two incoming entries;
* branch targets belong to the same function;
* instruction operands are defined in the same function (or are
  constants/arguments);
* call instructions name functions that exist in the module or are
  conventionally-external (intrinsics are allowed through a whitelist
  prefix check), and calls to known ``tfm_`` intrinsics pass the arity
  the runtime dispatch expects.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set

from repro.errors import IRVerifyError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Phi
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, UndefValue, Value

#: Calls whose callees need not be defined in the module: runtime
#: intrinsics injected by the TrackFM passes and the libc surface the
#: interpreter provides natively.
INTRINSIC_PREFIXES = ("tfm_", "aifm_", "llvm.", "global_addr.")
EXTERNAL_BUILTINS = {
    "malloc",
    "calloc",
    "realloc",
    "free",
    "memcpy",
    "memset",
    "print_i64",
    "print_f64",
    "abort",
}


#: Argument counts of the runtime intrinsics the passes inject,
#: matching the dispatch table in :mod:`repro.sim.irrun`.  A guard call
#: with the wrong arity would be silently mis-executed at run time, so
#: the verifier rejects it before any analysis consumes the module.
INTRINSIC_ARITIES = {
    "tfm_runtime_init": 0,
    "tfm_malloc": 1,
    "tfm_malloc_pinned": 1,
    "tfm_calloc": 2,
    "tfm_realloc": 2,
    "tfm_free": 1,
    "tfm_guard_read": 1,
    "tfm_guard_write": 1,
    "tfm_chunk_begin": 2,
    "tfm_chunk_deref": 2,
    "tfm_chunk_deref_write": 2,
    "tfm_chunk_end": 1,
    "tfm_chase_deref": 4,
    "tfm_chase_deref_write": 4,
    "tfm_offload_reduce": 5,
    # base, offset, stride, count, distance, stream
    "tfm_prefetch_sched": 6,
}


def _is_external_ok(name: str) -> bool:
    if name in EXTERNAL_BUILTINS:
        return True
    return any(name.startswith(p) for p in INTRINSIC_PREFIXES)


def verify_function(func: Function) -> None:
    """Raise :class:`IRVerifyError` on the first violation found."""
    if func.is_declaration:
        return
    blocks: Set[BasicBlock] = set(func.blocks)
    if not func.blocks:
        raise IRVerifyError(f"@{func.name}: no blocks")

    # Map each value to its defining block for the domination-lite check.
    defined_in: Dict[Value, BasicBlock] = {}
    for block in func.blocks:
        seen_non_phi = False
        term = block.terminator
        if term is None:
            raise IRVerifyError(f"@{func.name} %{block.name}: missing terminator")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator() and i != len(block.instructions) - 1:
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: terminator not last "
                    f"({inst.render()})"
                )
            if isinstance(inst, Phi):
                if seen_non_phi:
                    raise IRVerifyError(
                        f"@{func.name} %{block.name}: phi after non-phi "
                        f"({inst.render()})"
                    )
            else:
                seen_non_phi = True
            if inst.parent is not block:
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: instruction parent link broken"
                )
            defined_in[inst] = block

    # CFG edges and predecessor map.
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            if succ not in blocks:
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: branch to foreign block %{succ.name}"
                )
            preds[succ].append(block)

    arg_set = set(func.args)
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Phi):
                incoming_blocks = [b for _, b in inst.incoming]
                # Multiset comparison: a duplicate predecessor (both arms
                # of a condbr targeting this block) needs one incoming
                # entry per edge, and vice versa.
                have = Counter(id(b) for b in incoming_blocks)
                want = Counter(id(b) for b in preds[block])
                if have != want:
                    raise IRVerifyError(
                        f"@{func.name} %{block.name}: phi %{inst.name} edges "
                        f"{sorted(b.name for b in incoming_blocks)} != preds "
                        f"{sorted(b.name for b in preds[block])} "
                        "(incoming-edge multiset disagrees with predecessors)"
                    )
            for op in inst.operands:
                if isinstance(op, (Constant, UndefValue)):
                    continue
                if isinstance(op, Argument):
                    if op not in arg_set:
                        raise IRVerifyError(
                            f"@{func.name}: foreign argument %{op.name} used"
                        )
                    continue
                if isinstance(op, Instruction):
                    if op not in defined_in:
                        raise IRVerifyError(
                            f"@{func.name} %{block.name}: use of value %{op.name} "
                            "not defined in this function"
                        )
                    continue
                raise IRVerifyError(
                    f"@{func.name} %{block.name}: unknown operand kind {op!r}"
                )
            if isinstance(inst, Call):
                module = func.parent
                if module is not None and not module.has_function(inst.callee):
                    if not _is_external_ok(inst.callee):
                        raise IRVerifyError(
                            f"@{func.name}: call to unknown @{inst.callee}"
                        )
                arity = INTRINSIC_ARITIES.get(inst.callee)
                if arity is not None and len(inst.operands) != arity:
                    raise IRVerifyError(
                        f"@{func.name} %{block.name}: @{inst.callee} expects "
                        f"{arity} argument(s), got {len(inst.operands)} "
                        f"({inst.render()})"
                    )


def verify_module(module: Module) -> None:
    """Verify every function in the module."""
    for func in module.functions():
        verify_function(func)
