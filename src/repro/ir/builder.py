"""IRBuilder: ergonomic construction of IR, LLVM-style.

The builder holds an insertion point (a block) and appends instructions
there, auto-naming SSA values.  It also accepts plain Python ints/floats
where a Value is expected, turning them into constants of the obvious
type, which keeps test programs short.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import IRError, IRTypeError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    CondBr,
    FCmp,
    Gep,
    ICmp,
    Instruction,
    IntToPtr,
    Load,
    Phi,
    PtrToInt,
    Ret,
    Select,
    Store,
)
from repro.ir.types import IRType, I1, I64, F64
from repro.ir.values import Constant, Value

Operand = Union[Value, int, float]


class IRBuilder:
    """Appends instructions at the end of a current block."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    # -- positioning --------------------------------------------------------

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise IRError("builder has no insertion point")
        return self.block.parent

    def _emit(self, inst: Instruction, name: str = "") -> Instruction:
        if self.block is None:
            raise IRError("builder has no insertion point")
        if not inst.type.is_void() and not inst.name:
            inst.name = name or self.function.unique_name("v")
        return self.block.append(inst)

    def _coerce(self, value: Operand, ty: IRType) -> Value:
        """Turn a Python scalar into a Constant of ``ty``; pass Values through."""
        if isinstance(value, Value):
            return value
        if isinstance(value, bool):
            return Constant(I1, int(value))
        if isinstance(value, int):
            if not ty.is_int():
                raise IRTypeError(f"int literal where {ty} expected")
            return Constant(ty, value)
        if isinstance(value, float):
            return Constant(F64, value)
        raise IRTypeError(f"cannot coerce {value!r} to an IR value")

    # -- memory -----------------------------------------------------------

    def alloca(self, size_bytes: int, name: str = "") -> Value:
        return self._emit(Alloca(size_bytes), name)

    def load(self, ty: IRType, ptr: Value, name: str = "") -> Value:
        return self._emit(Load(ty, ptr), name)

    def store(self, value: Operand, ptr: Value) -> Instruction:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            value = Constant(I64 if isinstance(value, int) else F64, value)
        assert isinstance(value, Value)
        return self._emit(Store(value, ptr))

    def gep(self, base: Value, index: Operand, elem_size: int, name: str = "") -> Value:
        idx = self._coerce(index, I64)
        return self._emit(Gep(base, idx, elem_size), name)

    # -- arithmetic -----------------------------------------------------

    def _binop(self, op: str, a: Operand, b: Operand, name: str) -> Value:
        if isinstance(a, Value):
            b = self._coerce(b, a.type)
        elif isinstance(b, Value):
            a = self._coerce(a, b.type)
        else:
            a = self._coerce(a, I64)
            b = self._coerce(b, I64)
        return self._emit(BinOp(op, a, b), name)

    def add(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("add", a, b, name)

    def sub(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("sub", a, b, name)

    def mul(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("mul", a, b, name)

    def sdiv(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("sdiv", a, b, name)

    def srem(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("srem", a, b, name)

    def and_(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("and", a, b, name)

    def or_(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("or", a, b, name)

    def xor(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("xor", a, b, name)

    def shl(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("shl", a, b, name)

    def lshr(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("lshr", a, b, name)

    def fadd(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("fadd", a, b, name)

    def fsub(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("fsub", a, b, name)

    def fmul(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("fmul", a, b, name)

    def fdiv(self, a: Operand, b: Operand, name: str = "") -> Value:
        return self._binop("fdiv", a, b, name)

    # -- comparisons ------------------------------------------------------

    def icmp(self, pred: str, a: Operand, b: Operand, name: str = "") -> Value:
        if isinstance(a, Value):
            b = self._coerce(b, a.type)
        elif isinstance(b, Value):
            a = self._coerce(a, b.type)
        else:
            a, b = self._coerce(a, I64), self._coerce(b, I64)
        return self._emit(ICmp(pred, a, b), name)

    def fcmp(self, pred: str, a: Operand, b: Operand, name: str = "") -> Value:
        av = a if isinstance(a, Value) else Constant(F64, float(a))
        bv = b if isinstance(b, Value) else Constant(F64, float(b))
        return self._emit(FCmp(pred, av, bv), name)

    # -- control flow ------------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Br(target))

    def condbr(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._emit(CondBr(cond, if_true, if_false))

    def ret(self, value: Optional[Operand] = None) -> Instruction:
        if value is None:
            return self._emit(Ret())
        v = self._coerce(value, self.function.ret_type)
        return self._emit(Ret(v))

    def call(self, ret_ty: IRType, callee: str, args: Sequence[Value] = (), name: str = "") -> Value:
        return self._emit(Call(ret_ty, callee, list(args)), name)

    def phi(self, ty: IRType, name: str = "") -> Phi:
        """Create a phi and insert it among the block's leading phis."""
        if self.block is None:
            raise IRError("builder has no insertion point")
        node = Phi(ty)
        node.name = name or self.function.unique_name("phi")
        idx = self.block.first_non_phi_index()
        self.block.insert(idx, node)
        return node

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Value:
        return self._emit(Select(cond, a, b), name)

    # -- casts ----------------------------------------------------------

    def ptrtoint(self, ptr: Value, name: str = "") -> Value:
        return self._emit(PtrToInt(ptr), name)

    def inttoptr(self, value: Value, name: str = "") -> Value:
        return self._emit(IntToPtr(value), name)

    def cast(self, op: str, value: Value, to: IRType, name: str = "") -> Value:
        return self._emit(Cast(op, value, to), name)
