"""Working-set scaling between the paper's testbed and the simulation.

Every figure in the paper plots a *ratio* (speedup, slowdown vs
local-only, amplification factor, MOps/s relative across configs) against
a *fraction* (local memory as % of working set) or a dimensionless
parameter (object size, zipf skew).  Those quantities are invariant under
a uniform shrink of the working set as long as we also keep

* the elements-per-object density (element sizes are NOT scaled), and
* the local-memory fraction

fixed.  :class:`ScaleModel` centralizes that shrink so each benchmark
declares the paper's sizes verbatim and the simulator runs at 1/SCALE of
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeConfigError
from repro.units import MB, align_up


@dataclass(frozen=True)
class ScaleModel:
    """Uniform working-set shrink with a floor.

    ``factor`` divides the paper's byte sizes; ``floor_bytes`` prevents a
    scaled working set from degenerating below a few thousand objects
    (which would quantize the local-memory sweep too coarsely).
    """

    factor: int = 1024
    floor_bytes: int = 1 * MB

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise RuntimeConfigError("scale factor must be >= 1")
        if self.floor_bytes < 4096:
            raise RuntimeConfigError("scale floor below one page is meaningless")

    def bytes(self, paper_bytes: int, granule: int = 4096) -> int:
        """Scale a byte size from the paper, aligned up to ``granule``."""
        scaled = max(paper_bytes // self.factor, self.floor_bytes)
        return align_up(scaled, granule)

    def count(self, paper_count: int, floor: int = 1024) -> int:
        """Scale an operation/element count (e.g. 50M lookups)."""
        return max(paper_count // self.factor, floor)

    def local_memory(self, working_set: int, fraction: float, granule: int = 4096) -> int:
        """Local-memory budget for a *scaled* working set at ``fraction``.

        Fractions are taken of the already-scaled working set so the
        x-axes of the figures carry over unchanged.
        """
        if not 0.0 < fraction <= 1.0:
            raise RuntimeConfigError(f"local-memory fraction must be in (0, 1], got {fraction}")
        budget = int(working_set * fraction)
        return max(align_up(budget, granule), granule)


#: Default shrink used by the benchmark harness: 1024x (GB -> MB).
DEFAULT_SCALE = ScaleModel()

#: A milder shrink for tests that want more objects in play.
FINE_SCALE = ScaleModel(factor=256)
