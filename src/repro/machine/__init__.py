"""Machine model: cycle cost tables, cache model, and working-set scaling.

The paper's experiments ran on two 10-core Xeon E5-2640v4 nodes with a
25 Gb/s ConnectX-4 NIC.  We do not have that testbed; instead every cost
in the reproduction flows from :class:`CostTable`, whose defaults are the
paper's own measured numbers (Tables 1 and 2, §3.3, §3.4).  The
:class:`ScaleModel` shrinks the paper's multi-GB working sets to sizes a
Python simulation sweeps in seconds while preserving the ratios the
figures actually plot.
"""

from repro.machine.costs import (
    CostTable,
    DEFAULT_COSTS,
    GuardKind,
    AccessKind,
)
from repro.machine.cache import (
    CacheModel,
    CacheStats,
    AlwaysHitCache,
    AlwaysMissCache,
)
from repro.machine.scale import ScaleModel, DEFAULT_SCALE, FINE_SCALE

__all__ = [
    "CostTable",
    "DEFAULT_COSTS",
    "GuardKind",
    "AccessKind",
    "CacheModel",
    "CacheStats",
    "AlwaysHitCache",
    "AlwaysMissCache",
    "ScaleModel",
    "DEFAULT_SCALE",
    "FINE_SCALE",
]
