"""A small set-associative cache model for object-state-table lookups.

The only data access on TrackFM's fast path is the 8-byte load from the
object state table (§3.3, Fig. 3).  Whether that load hits the CPU cache
decides between the "cached" and "uncached" columns of Table 1.  We model
just enough of the cache to make that distinction behave realistically
under different access patterns: a set-associative LRU cache over the
state table's cache lines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import RuntimeConfigError
from repro.units import CACHE_LINE, is_power_of_two


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class CacheModel:
    """Set-associative LRU cache keyed by byte address.

    Parameters mirror a last-level-cache slice big enough to be the
    deciding factor for state-table locality: 32 KB / 8-way by default
    (one L1D's worth — the state table competes with application data, so
    modelling only a small fraction of the LLC is the conservative
    choice and matches the paper's cached-vs-uncached spread).
    """

    def __init__(
        self,
        size_bytes: int = 32 * 1024,
        line_size: int = CACHE_LINE,
        ways: int = 8,
    ) -> None:
        if not is_power_of_two(line_size):
            raise RuntimeConfigError("cache line size must be a power of two")
        if size_bytes <= 0 or ways <= 0:
            raise RuntimeConfigError("cache size and ways must be positive")
        lines = size_bytes // line_size
        if lines < ways or lines % ways != 0:
            raise RuntimeConfigError(
                f"cache of {size_bytes}B with {line_size}B lines cannot be "
                f"{ways}-way associative"
            )
        self.line_size = line_size
        self.ways = ways
        self.num_sets = lines // ways
        self.stats = CacheStats()
        # One LRU OrderedDict per set: tag -> None.
        self._sets: Dict[int, "OrderedDict[int, None]"] = {}

    def access(self, addr: int) -> bool:
        """Touch ``addr``; return True on hit, False on miss (and fill)."""
        line = addr // self.line_size
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets.get(set_idx)
        if entries is None:
            entries = OrderedDict()
            self._sets[set_idx] = entries
        if tag in entries:
            entries.move_to_end(tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        entries[tag] = None
        if len(entries) > self.ways:
            entries.popitem(last=False)
        return False

    def flush(self) -> None:
        """Drop all cached lines (counters are kept)."""
        self._sets.clear()

    def reset(self) -> None:
        """Drop lines and zero counters."""
        self.flush()
        self.stats.reset()


class AlwaysHitCache(CacheModel):
    """Degenerate cache used by closed-form simulations: always hits."""

    def __init__(self) -> None:
        super().__init__(size_bytes=64 * 1024, line_size=CACHE_LINE, ways=8)

    def access(self, addr: int) -> bool:  # noqa: D102 - see class docstring
        self.stats.hits += 1
        return True


class AlwaysMissCache(CacheModel):
    """Degenerate cache used to probe the uncached columns of Table 1."""

    def __init__(self) -> None:
        super().__init__(size_bytes=64 * 1024, line_size=CACHE_LINE, ways=8)

    def access(self, addr: int) -> bool:  # noqa: D102 - see class docstring
        self.stats.misses += 1
        return False
