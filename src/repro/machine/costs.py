"""Cycle cost tables calibrated to the paper's measurements.

Sources (all from the TrackFM paper):

* Table 1 — fast/slow path guard costs, cached vs uncached, for a *local*
  object: fast read/write 21 cycles cached (297/309 uncached); slow read
  144 (453 uncached); slow write 159 (432 uncached).
* §4.1 — an unmodified local load/store costs 36 cycles.
* Table 2 — Fastswap read/write fault 1.3K cycles when the page is local
  (swap-cache hit), 34K/35K when remote; TrackFM slow-path guard 35K when
  the object is remote (TCP backend fetch included).
* §3.3 — instruction counts: custody check ~4 instructions on the
  not-managed path and ~6 on the managed path, fast path 14 instructions
  total, slow path >= 144 instructions.
* §3.4 — boundary check 3 instructions; the locality-invariant guard is a
  runtime call, "slightly more expensive" than a slow-path guard.  Its
  default below is fitted so the cost model's crossover lands at the
  paper's ~730 elements/object (Fig. 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import RuntimeConfigError


class AccessKind(enum.Enum):
    """Whether a guarded access is a read (load) or a write (store)."""

    READ = "read"
    WRITE = "write"


class GuardKind(enum.Enum):
    """Which guard flavour a memory access went through.

    ``NONE`` is an unguarded access (stack/global, or the custody check's
    not-managed exit).  ``BOUNDARY`` is the 3-instruction object-boundary
    check inserted by loop chunking, and ``LOCALITY`` the
    locality-invariant guard taken when the boundary is crossed.
    """

    NONE = "none"
    CUSTODY_MISS = "custody_miss"
    FAST = "fast"
    SLOW = "slow"
    BOUNDARY = "boundary"
    LOCALITY = "locality"


@dataclass(frozen=True)
class CostTable:
    """All cycle costs used by the simulators, in one place.

    Cached vs uncached distinguishes whether the guard's object-state-table
    lookup (the single data access on the fast path, §3.3) hits or misses
    the CPU cache.
    """

    #: Unmodified local load/store (§4.1).
    local_access: float = 36.0

    #: Extra cycles of a fast-path guard over the raw access, cached.
    fast_guard_read_cached: float = 21.0
    fast_guard_write_cached: float = 21.0
    #: Total fast-path guard cost when the state-table entry misses cache.
    fast_guard_read_uncached: float = 297.0
    fast_guard_write_uncached: float = 309.0

    #: Slow-path guard with the object already local (runtime call only).
    slow_guard_read_cached: float = 144.0
    slow_guard_write_cached: float = 159.0
    slow_guard_read_uncached: float = 453.0
    slow_guard_write_uncached: float = 432.0

    #: Slow-path guard when the object is remote: dominated by the fetch.
    #: (Table 2: ~35K cycles end to end over the TCP backend.)
    slow_guard_remote: float = 35_000.0

    #: Fastswap page-fault costs (Table 2).
    fastswap_fault_local: float = 1_300.0
    fastswap_fault_remote_read: float = 34_000.0
    fastswap_fault_remote_write: float = 35_000.0

    #: Custody check on the not-managed exit (~4 instructions).
    custody_miss: float = 4.0

    #: Loop-chunking helper costs (§3.4).  The boundary check is the
    #: 3-instruction per-iteration test (Fig. 5, yellow).  The locality
    #: invariant guard (orange) is a runtime call that pins one object —
    #: "slightly more expensive" than a slow-path guard.  Chunked loops
    #: additionally pay a one-time per-loop-entry setup (the
    #: ``tfm_init``/``tfm_rw`` calls in Fig. 5 that create the chunk
    #: state).  This split is what reconciles the paper's numbers: the
    #: Fig. 6 microloop (one object per loop entry) breaks even at
    #: d* = (setup + c_l - c_f) / (c_f - c_b) ~= 730 elements/object,
    #: while long STREAM loops amortize the setup and reach the ~2x
    #: speedups of Fig. 7, and nested short loops (k-means, Fig. 8)
    #: pay the setup per outer iteration and slow down ~4x.
    boundary_check: float = 3.0
    locality_guard: float = 420.0
    chunk_setup: float = 12_700.0

    #: Instruction-count view of the same guards, used by the cost model
    #: (Eqs. 1-3 are expressed in per-guard instruction costs).
    fast_guard_instrs: int = 14
    slow_guard_instrs: int = 144
    boundary_check_instrs: int = 3
    custody_check_instrs: int = 6

    #: Evacuation (write-back of a dirty object/page) is charged the same
    #: as a remote fetch of the same size by default.
    evacuation_factor: float = 1.0

    def __post_init__(self) -> None:
        numeric = {
            name: getattr(self, name)
            for name in (
                "local_access",
                "fast_guard_read_cached",
                "fast_guard_write_cached",
                "slow_guard_read_cached",
                "slow_guard_write_cached",
                "slow_guard_remote",
                "fastswap_fault_local",
                "fastswap_fault_remote_read",
                "fastswap_fault_remote_write",
                "boundary_check",
                "locality_guard",
            )
        }
        for name, value in numeric.items():
            if value < 0:
                raise RuntimeConfigError(f"cost {name!r} must be >= 0, got {value}")

    # -- guard cost lookups -------------------------------------------------

    def fast_guard(self, kind: AccessKind, cached: bool = True) -> float:
        """Extra cycles charged for a fast-path guard (excludes the access)."""
        if kind is AccessKind.READ:
            return self.fast_guard_read_cached if cached else self.fast_guard_read_uncached
        return self.fast_guard_write_cached if cached else self.fast_guard_write_uncached

    def slow_guard_local(self, kind: AccessKind, cached: bool = True) -> float:
        """Slow-path guard cycles when the object is already local."""
        if kind is AccessKind.READ:
            return self.slow_guard_read_cached if cached else self.slow_guard_read_uncached
        return self.slow_guard_write_cached if cached else self.slow_guard_write_uncached

    def fastswap_fault(self, kind: AccessKind, remote: bool) -> float:
        """Fastswap page-fault cycles (Table 2)."""
        if not remote:
            return self.fastswap_fault_local
        if kind is AccessKind.READ:
            return self.fastswap_fault_remote_read
        return self.fastswap_fault_remote_write

    def chunking_crossover_density(self) -> float:
        """Eq. 3: minimum elements/object for loop chunking to pay off.

        Evaluated for the paper's Fig. 6 setting — a loop whose entry
        covers a single object (N = d, one locality guard, setup paid
        once per entry): naive = (d-1)c_f + c_s vs chunked = setup +
        d*c_b + c_l.  Solving gives
        d* = (setup + c_l - c_s + c_f) / (c_f - c_b), ~722 with the
        defaults (the paper reports ~730).  The paper's Eq. 3 writes the
        same threshold with the setup folded into its c_l.
        """
        denom = self.fast_guard_read_cached - self.boundary_check
        if denom <= 0:
            raise RuntimeConfigError(
                "cost table degenerate: boundary check must be cheaper "
                "than a fast-path guard"
            )
        numerator = (
            self.chunk_setup
            + self.locality_guard
            - self.slow_guard_read_cached
            + self.fast_guard_read_cached
        )
        return numerator / denom

    def paging_crossover_density(
        self,
        objects_touched_per_page: float = 1.0,
        resident_fraction: float = 0.0,
        reclaim_cycles: float = 0.0,
        wire_object_cycles: float = 0.0,
        wire_page_cycles: float = 0.0,
        kind: AccessKind = AccessKind.READ,
    ) -> float:
        """Accesses/page/window above which paging beats object fetch.

        The "Tale of Two Paths" crossover: a page tier pays one
        amortized fault per non-resident page and nothing per access; an
        object tier pays a fast-path guard on *every* access plus one
        remote slow-path guard per non-resident object it touches.  With
        miss probability ``m = 1 - resident_fraction``, per page and
        window::

            page_cost(d)   = m * (fault_remote + reclaim + w_p)        (flat in d)
            object_cost(d) = d * c_f + k * m * (slow_guard_remote + w_o)

        where ``d`` is accesses per page, ``k`` objects touched per
        page, and ``w_p``/``w_o`` the wire serialization of one page /
        one object (the I/O amplification term: a page fault moves the
        whole page over the wire, an object fetch only the object).
        Solving ``page_cost = object_cost`` for ``d`` gives the
        crossover; clamped at 0 (dense pages touch every object, making
        the object tier's fetches alone dearer than one fault — paging
        wins at any density).
        """
        fast = self.fast_guard(kind, cached=True)
        if fast <= 0:
            raise RuntimeConfigError(
                "cost table degenerate: fast-path guard must cost cycles"
            )
        miss = 1.0 - resident_fraction
        page_cost = miss * (
            self.fastswap_fault(kind, remote=True)
            + reclaim_cycles
            + wire_page_cycles
        )
        object_fetches = (
            objects_touched_per_page
            * miss
            * (self.slow_guard_remote + wire_object_cycles)
        )
        return max(0.0, (page_cost - object_fetches) / fast)

    def with_overrides(self, **kwargs: float) -> "CostTable":
        """Return a copy with some costs replaced (for ablations)."""
        return replace(self, **kwargs)


#: The calibrated default used everywhere unless a benchmark overrides it.
DEFAULT_COSTS = CostTable()
