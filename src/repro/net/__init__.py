"""Network model for the far-memory interconnect.

The paper's testbed uses a 25 Gb/s Mellanox ConnectX-4 between two
nodes; Fastswap drives it with one-sided RDMA, AIFM (and therefore
TrackFM) with Shenango's TCP stack.  We model a link by three numbers —
one-way latency, bandwidth, per-message CPU overhead — calibrated so
that a 4 KB fetch lands on the paper's end-to-end costs (Table 2), and
we account every byte moved (the I/O-amplification figures).
"""

from repro.net.link import NetworkLink, LinkStats, TransferDirection
from repro.net.faults import (
    BreakerState,
    CircuitBreaker,
    FaultPlan,
    FaultSchedule,
    FaultStats,
    FaultyLink,
    RetryPolicy,
    default_fault_plan,
    installed_fault_plan,
    parse_fault_spec,
    set_default_fault_plan,
)
from repro.net.backends import (
    RemoteBackend,
    TcpBackend,
    RdmaBackend,
    make_tcp_backend,
    make_rdma_backend,
    make_shard_backend,
)

__all__ = [
    "NetworkLink",
    "LinkStats",
    "TransferDirection",
    "RemoteBackend",
    "TcpBackend",
    "RdmaBackend",
    "make_tcp_backend",
    "make_rdma_backend",
    "make_shard_backend",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "FaultyLink",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "parse_fault_spec",
    "default_fault_plan",
    "set_default_fault_plan",
    "installed_fault_plan",
]
