"""Deterministic network fault injection and the resilience primitives.

The link/backends modules model a *healthy* fabric; production far
memory lives on one that drops messages, spikes, jitters and pauses
(AIFM's evaluation and the hybrid-data-plane line of work both hit
this).  This module supplies the failure half of the model plus the
machinery that survives it:

* :class:`FaultPlan` — a frozen, seeded description of a fault schedule
  (per-message drop probability, latency spikes, bounded jitter,
  remote-node pause windows).  Every decision is a pure function of
  ``(seed, message index)`` via a splitmix64 hash, so the same plan
  produces a bit-identical schedule on every run — no ``random`` module
  state, no wall clock;
* :class:`FaultSchedule` — the per-link materialization of a plan: it
  advances a message index, returns extra cycles (spike + jitter) for
  delivered messages and raises
  :class:`~repro.errors.TransientNetworkError` for lost ones;
* :class:`FaultyLink` — a :class:`~repro.net.link.NetworkLink` with a
  schedule attached (``FaultyLink.wrap`` decorates an existing link);
* :class:`RetryPolicy` — timeout accounting plus capped exponential
  backoff with seeded jitter and an optional lifetime retry budget;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, clocked in rejected requests so it needs no wall time;
* a process-wide *default plan* hook that the backend factories consult,
  which is how the ``--faults`` CLI knobs reach harness-built runtimes.

The healthy-path contract mirrors the tracer's: a link without faults
pays exactly one attribute check in ``transfer`` and a backend without a
policy or breaker takes a two-check fast path in ``fetch``/``evict``
(verified by ``benchmarks/bench_fault_overhead.py``).
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple

from repro.errors import RuntimeConfigError, TransientNetworkError
from repro.net.link import NetworkLink

__all__ = [
    "CORRUPTION_KINDS",
    "FAULT_SPEC_KEYS",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "FaultyLink",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "parse_fault_spec",
    "default_fault_plan",
    "set_default_fault_plan",
    "installed_fault_plan",
]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 round: the deterministic RNG behind every decision."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _unit(seed: int, index: int, salt: int) -> float:
    """Uniform [0, 1) derived purely from ``(seed, index, salt)``."""
    h = _splitmix64((seed & _MASK64) ^ _splitmix64((index << 8) ^ salt))
    return h / float(1 << 64)


#: Decision salts: independent uniforms per message for each fault kind.
_SALT_DROP = 0x1D
_SALT_SPIKE = 0x2E
_SALT_JITTER = 0x3F
#: Salt space for retry-backoff jitter (RetryPolicy).
_SALT_BACKOFF = 0x4A
#: Data-fault salts: payload corruption rolls run on their own counters.
_SALT_BITFLIP = 0x5B
_SALT_STALE = 0x6C
_SALT_TORN = 0x7D
_SALT_LOSTWB = 0x8E

#: The payload-corruption kinds a plan can inject (``repro.integrity``
#: classifies them: bitflip/stale_read are transmission faults repaired
#: by a re-fetch; torn_write/lost_writeback damage the remote copy and
#: need a journal re-drive).
CORRUPTION_KINDS = ("bitflip", "torn_write", "lost_writeback", "stale_read")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded fault schedule description (immutable; safe to share).

    ``pause_windows`` are half-open ``[start, end)`` *message-index*
    windows during which the remote node does not answer at all — every
    message rolled inside one is lost, which is how remote GC pauses and
    node crashes look from this side of the wire.
    """

    seed: int = 0
    #: Per-message loss probability.
    drop_rate: float = 0.0
    #: Per-message probability of a latency spike of ``spike_cycles``.
    spike_rate: float = 0.0
    spike_cycles: float = 0.0
    #: Uniform per-message jitter in ``[0, jitter_cycles)``.
    jitter_cycles: float = 0.0
    pause_windows: Tuple[Tuple[int, int], ...] = ()
    #: Data faults — per-*payload* corruption probabilities, rolled on
    #: separate counters from the message fates above so arming them
    #: never perturbs an existing loss/latency schedule.
    #: Fetch payloads: a flipped bit in flight / a stale version served.
    bitflip_rate: float = 0.0
    stale_read_rate: float = 0.0
    #: Writeback payloads: partially applied / acked but never applied.
    torn_write_rate: float = 0.0
    lost_writeback_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "spike_rate",
            "bitflip_rate",
            "stale_read_rate",
            "torn_write_rate",
            "lost_writeback_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise RuntimeConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.spike_cycles < 0 or self.jitter_cycles < 0:
            raise RuntimeConfigError("spike/jitter cycles must be >= 0")
        for start, end in self.pause_windows:
            if start < 0 or end <= start:
                raise RuntimeConfigError(
                    f"pause window [{start}, {end}) must be non-empty and >= 0"
                )

    @property
    def is_noop(self) -> bool:
        """True when the plan can never perturb a message."""
        return (
            self.drop_rate == 0.0
            and (self.spike_rate == 0.0 or self.spike_cycles == 0.0)
            and self.jitter_cycles == 0.0
            and not self.pause_windows
            and not self.has_data_faults
        )

    @property
    def has_data_faults(self) -> bool:
        """True when the plan can corrupt a payload (vs just delay/lose it)."""
        return (
            self.bitflip_rate > 0.0
            or self.stale_read_rate > 0.0
            or self.torn_write_rate > 0.0
            or self.lost_writeback_rate > 0.0
        )

    def paused_at(self, index: int) -> bool:
        return any(start <= index < end for start, end in self.pause_windows)

    def decide(self, index: int) -> Tuple[Optional[str], float]:
        """The fate of message ``index``: ``(loss_kind | None, extra_cycles)``.

        Pure — two calls with the same index always agree, which is what
        makes schedules replayable and the chaos suite deterministic.
        """
        if self.paused_at(index):
            return "pause", 0.0
        if self.drop_rate > 0.0 and _unit(self.seed, index, _SALT_DROP) < self.drop_rate:
            return "drop", 0.0
        extra = 0.0
        if self.spike_rate > 0.0 and _unit(self.seed, index, _SALT_SPIKE) < self.spike_rate:
            extra += self.spike_cycles
        if self.jitter_cycles > 0.0:
            extra += _unit(self.seed, index, _SALT_JITTER) * self.jitter_cycles
        return None, extra

    def fetch_payload_fault(self, index: int) -> Optional[str]:
        """The fate of fetch payload ``index``: a corruption kind or None.

        Pure, like :meth:`decide` — data faults replay bit-for-bit.
        """
        if self.bitflip_rate > 0.0 and _unit(self.seed, index, _SALT_BITFLIP) < self.bitflip_rate:
            return "bitflip"
        if (
            self.stale_read_rate > 0.0
            and _unit(self.seed, index, _SALT_STALE) < self.stale_read_rate
        ):
            return "stale_read"
        return None

    def evict_payload_fault(self, index: int) -> Optional[str]:
        """The fate of writeback payload ``index``: a corruption kind or None."""
        if self.torn_write_rate > 0.0 and _unit(self.seed, index, _SALT_TORN) < self.torn_write_rate:
            return "torn_write"
        if (
            self.lost_writeback_rate > 0.0
            and _unit(self.seed, index, _SALT_LOSTWB) < self.lost_writeback_rate
        ):
            return "lost_writeback"
        return None

    def schedule(self) -> "FaultSchedule":
        """A fresh per-link schedule starting at message index 0."""
        return FaultSchedule(self)

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same fault mix under a different seed."""
        return replace(self, seed=seed)

    def control_variant(self, channel_id: int, salt: int) -> "FaultPlan":
        """The same fault mix reseeded for one control-plane channel.

        Heartbeat probes (``repro.serve.replication``) ride the same
        lossy fabric as the data links but must roll independent fates:
        the variant mixes ``(seed, channel, salt)`` through splitmix64,
        and its schedules run their own message counters, so arming a
        control channel never perturbs an existing data-link replay.
        """
        return self.reseeded(
            _splitmix64((self.seed & _MASK64) ^ (channel_id << 1) ^ (salt & _MASK64))
        )


@dataclass
class FaultStats:
    """What a schedule actually did to one link."""

    messages: int = 0
    drops: int = 0
    pauses: int = 0
    spikes: int = 0
    extra_cycles: float = 0.0
    #: Data faults injected (payload rolls, not message fates).
    bitflips: int = 0
    stale_reads: int = 0
    torn_writes: int = 0
    lost_writebacks: int = 0

    @property
    def losses(self) -> int:
        return self.drops + self.pauses

    @property
    def corruptions(self) -> int:
        return self.bitflips + self.stale_reads + self.torn_writes + self.lost_writebacks

    def reset(self) -> None:
        self.messages = 0
        self.drops = 0
        self.pauses = 0
        self.spikes = 0
        self.extra_cycles = 0.0
        self.bitflips = 0
        self.stale_reads = 0
        self.torn_writes = 0
        self.lost_writebacks = 0


class FaultSchedule:
    """A plan bound to one link: consumes message indices in order."""

    __slots__ = ("plan", "index", "fetch_payload_index", "evict_payload_index", "stats")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.index = 0
        self.fetch_payload_index = 0
        self.evict_payload_index = 0
        self.stats = FaultStats()

    def roll(self, size_bytes: int) -> float:
        """Decide the next message's fate; returns extra delay cycles.

        Raises :class:`TransientNetworkError` when the message is lost
        (drop or pause window); the index still advances so a retry is a
        *new* message with its own roll.
        """
        del size_bytes  # losses are per message, not per byte
        index = self.index
        self.index = index + 1
        kind, extra = self.plan.decide(index)
        stats = self.stats
        stats.messages += 1
        if kind is not None:
            if kind == "pause":
                stats.pauses += 1
            else:
                stats.drops += 1
            raise TransientNetworkError(
                f"message {index} lost ({kind})", kind=kind, message_index=index
            )
        if extra:
            if self.plan.spike_cycles and extra >= self.plan.spike_cycles:
                stats.spikes += 1
            stats.extra_cycles += extra
        return extra

    def roll_fetch_payload(self) -> Optional[str]:
        """Corruption fate of the next *fetch* payload (None = intact).

        Runs on its own counter: re-fetches during repair consume new
        indices, so a repaired payload gets a fresh, independent roll.
        """
        index = self.fetch_payload_index
        self.fetch_payload_index = index + 1
        kind = self.plan.fetch_payload_fault(index)
        if kind == "bitflip":
            self.stats.bitflips += 1
        elif kind == "stale_read":
            self.stats.stale_reads += 1
        return kind

    def roll_evict_payload(self) -> Optional[str]:
        """Corruption fate of the next *writeback* payload (None = intact)."""
        index = self.evict_payload_index
        self.evict_payload_index = index + 1
        kind = self.plan.evict_payload_fault(index)
        if kind == "torn_write":
            self.stats.torn_writes += 1
        elif kind == "lost_writeback":
            self.stats.lost_writebacks += 1
        return kind


@dataclass
class FaultyLink(NetworkLink):
    """A :class:`NetworkLink` born with a fault schedule attached.

    Prefer :meth:`wrap` to decorate an already-configured link; the
    wrapped link shares the original's :class:`LinkStats` so byte
    accounting stays continuous across the swap.
    """

    plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.plan is not None and self.faults is None:
            self.faults = self.plan.schedule()

    @classmethod
    def wrap(cls, link: NetworkLink, plan: FaultPlan) -> "FaultyLink":
        """A faulted view of ``link`` (same costs, same stats object)."""
        return cls(
            latency_cycles=link.latency_cycles,
            bytes_per_cycle=link.bytes_per_cycle,
            per_message_cycles=link.per_message_cycles,
            stats=link.stats,
            plan=plan,
        )


# -- retry policy -------------------------------------------------------------


@dataclass
class RetryPolicy:
    """Timeout + capped exponential backoff with seeded jitter.

    ``max_attempts`` counts *all* tries including the first;
    ``retry_budget`` (when set) additionally caps the total number of
    retries the policy will ever grant across its lifetime — a blown
    budget fails fast even when per-request attempts remain.
    """

    max_attempts: int = 4
    #: Cycles charged per failed attempt (loss detection delay).
    timeout_cycles: float = 50_000.0
    base_backoff_cycles: float = 10_000.0
    backoff_multiplier: float = 2.0
    max_backoff_cycles: float = 200_000.0
    #: Jitter band: the jittered backoff lands in [base, base*(1+fraction)).
    jitter_fraction: float = 0.1
    retry_budget: Optional[int] = None
    seed: int = 0
    #: Lifetime retries granted so far (vs ``retry_budget``).
    retries_used: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RuntimeConfigError("max_attempts must be >= 1")
        if self.timeout_cycles < 0 or self.base_backoff_cycles < 0:
            raise RuntimeConfigError("timeout/backoff cycles must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise RuntimeConfigError("backoff_multiplier must be >= 1")
        if self.max_backoff_cycles < 0:
            raise RuntimeConfigError("max_backoff_cycles must be >= 0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise RuntimeConfigError("jitter_fraction must be in [0, 1]")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise RuntimeConfigError("retry_budget must be >= 0")

    def base_backoff(self, attempt: int) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based).

        Monotone non-decreasing in ``attempt`` and capped at
        ``max_backoff_cycles`` — the two properties the chaos property
        suite pins.
        """
        if attempt < 1:
            raise RuntimeConfigError("attempt numbers are 1-based")
        raw = self.base_backoff_cycles * self.backoff_multiplier ** (attempt - 1)
        return min(raw, self.max_backoff_cycles)

    def backoff_cycles(self, attempt: int) -> float:
        """Jittered backoff: base plus a seeded slice of the jitter band."""
        base = self.base_backoff(attempt)
        u = _unit(self.seed, self.retries_used, _SALT_BACKOFF ^ attempt)
        return base * (1.0 + self.jitter_fraction * u)

    def should_retry(self, attempt: int) -> bool:
        """May failed attempt ``attempt`` be retried?"""
        if attempt >= self.max_attempts:
            return False
        if self.retry_budget is not None and self.retries_used >= self.retry_budget:
            return False
        return True

    def consume_retry(self) -> None:
        self.retries_used += 1


# -- circuit breaker ----------------------------------------------------------


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed → open → half-open, clocked in rejected requests.

    Simulated time only advances while requests flow, so the usual
    wall-clock cooldown would deadlock (an open breaker admits no
    requests, the clock never moves).  Instead the breaker counts the
    requests it *rejects* while open; after ``cooldown_rejections`` of
    them the next request is admitted as the half-open probe.
    """

    def __init__(
        self, failure_threshold: int = 5, cooldown_rejections: int = 8
    ) -> None:
        if failure_threshold < 1:
            raise RuntimeConfigError("failure_threshold must be >= 1")
        if cooldown_rejections < 1:
            raise RuntimeConfigError("cooldown_rejections must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_rejections = cooldown_rejections
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.rejections_while_open = 0
        #: Times the breaker transitioned into OPEN.
        self.trips = 0

    def allow(self) -> bool:
        """May the next request go out?  (Mutates: rejections count.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return True
        self.rejections_while_open += 1
        if self.rejections_while_open >= self.cooldown_rejections:
            self.state = BreakerState.HALF_OPEN
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.rejections_while_open = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = BreakerState.OPEN
        self.rejections_while_open = 0
        self.trips += 1


# -- fault-spec parsing (the --faults CLI knob) -------------------------------


#: Every key ``parse_fault_spec`` accepts, in grammar order — kept as
#: data so the unknown-key error can enumerate them (and so tests pin
#: that the enumeration stays complete as kinds are added).
FAULT_SPEC_KEYS = (
    "seed",
    "drop",
    "spike",
    "jitter",
    "pause",
    "bitflip",
    "stale",
    "torn",
    "lostwb",
)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a compact ``key=value`` fault spec into a :class:`FaultPlan`.

    Grammar (comma-separated, all parts optional)::

        seed=<int>,drop=<rate>,spike=<rate>:<cycles>,jitter=<cycles>,
        pause=<start>:<end>[;<start>:<end>...],
        bitflip=<rate>,stale=<rate>,torn=<rate>,lostwb=<rate>

    Example: ``"seed=3,drop=0.02,spike=0.05:20000,jitter=500,bitflip=0.01"``.
    """
    kwargs: dict = {}
    spec = spec.strip()
    if not spec:
        return FaultPlan()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise RuntimeConfigError(f"bad fault spec part {part!r} (want key=value)")
        key, _, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "drop":
                kwargs["drop_rate"] = float(value)
            elif key == "spike":
                rate, _, cycles = value.partition(":")
                kwargs["spike_rate"] = float(rate)
                kwargs["spike_cycles"] = float(cycles) if cycles else 10_000.0
            elif key == "jitter":
                kwargs["jitter_cycles"] = float(value)
            elif key == "pause":
                windows = []
                for win in value.split(";"):
                    start, _, end = win.partition(":")
                    windows.append((int(start), int(end)))
                kwargs["pause_windows"] = tuple(windows)
            elif key == "bitflip":
                kwargs["bitflip_rate"] = float(value)
            elif key == "stale":
                kwargs["stale_read_rate"] = float(value)
            elif key == "torn":
                kwargs["torn_write_rate"] = float(value)
            elif key == "lostwb":
                kwargs["lost_writeback_rate"] = float(value)
            else:
                raise RuntimeConfigError(
                    f"unknown fault spec key {key!r}; "
                    f"valid keys: {', '.join(FAULT_SPEC_KEYS)}"
                )
        except ValueError as err:
            raise RuntimeConfigError(f"bad fault spec value {part!r}: {err}") from err
    return FaultPlan(**kwargs)


# -- process-wide default plan ------------------------------------------------

#: When set, ``make_tcp_backend``/``make_rdma_backend`` wrap their links
#: with this plan and attach a default RetryPolicy + CircuitBreaker —
#: the hook behind the ``--faults`` CLI knobs.
_DEFAULT_PLAN: Optional[FaultPlan] = None


def default_fault_plan() -> Optional[FaultPlan]:
    return _DEFAULT_PLAN


def set_default_fault_plan(plan: Optional[FaultPlan]) -> None:
    global _DEFAULT_PLAN
    _DEFAULT_PLAN = plan


@contextlib.contextmanager
def installed_fault_plan(plan: Optional[FaultPlan]) -> Iterator[None]:
    """Temporarily install ``plan`` as the process default."""
    previous = _DEFAULT_PLAN
    set_default_fault_plan(plan)
    try:
        yield
    finally:
        set_default_fault_plan(previous)
