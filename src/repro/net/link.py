"""Latency/bandwidth/overhead link model with byte accounting."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RuntimeConfigError

#: CPU clock of the paper's testbed (Xeon E5-2640v4), used to convert
#: link bandwidth into bytes per cycle: 25 Gb/s at 2.4 GHz.
CPU_GHZ = 2.4
LINK_GBPS = 25.0

#: Bytes the wire can move per CPU cycle at those rates (~1.30).
BYTES_PER_CYCLE_25G = (LINK_GBPS * 1e9 / 8.0) / (CPU_GHZ * 1e9)


class TransferDirection(enum.Enum):
    """Fetch pulls data to the local node; evict pushes it back."""

    FETCH = "fetch"
    EVICT = "evict"


@dataclass
class LinkStats:
    """Per-link accounting."""

    messages: int = 0
    bytes_fetched: int = 0
    bytes_evicted: int = 0
    busy_cycles: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_fetched + self.bytes_evicted

    def reset(self) -> None:
        self.messages = 0
        self.bytes_fetched = 0
        self.bytes_evicted = 0
        self.busy_cycles = 0.0


@dataclass
class NetworkLink:
    """One point-to-point link.

    ``transfer_cycles(size)`` is the blocking cost of one message:
    ``latency + per_message_overhead + size / bytes_per_cycle``.
    Pipelined transfers (prefetching, concurrent fetches) amortize the
    latency term across ``depth`` outstanding requests —
    ``pipelined_cycles`` models that the way AIFM's runtime does: the
    wire time is paid in full, the round-trip only once per ``depth``.
    """

    latency_cycles: float
    bytes_per_cycle: float = BYTES_PER_CYCLE_25G
    per_message_cycles: float = 300.0
    stats: LinkStats = field(default_factory=LinkStats)
    #: Optional :class:`repro.net.faults.FaultSchedule`.  ``None`` (the
    #: default) keeps ``transfer`` on the healthy path at the cost of a
    #: single attribute check — same contract as the tracer hot path.
    faults: Optional[object] = None

    def __post_init__(self) -> None:
        if self.latency_cycles < 0 or self.per_message_cycles < 0:
            raise RuntimeConfigError("link costs must be >= 0")
        if self.bytes_per_cycle <= 0:
            raise RuntimeConfigError("bandwidth must be positive")

    def wire_cycles(self, size_bytes: int) -> float:
        """Pure serialization time of ``size_bytes`` on the wire."""
        return size_bytes / self.bytes_per_cycle

    def transfer_cycles(self, size_bytes: int) -> float:
        """Blocking (unpipelined) cost of one message."""
        return self.latency_cycles + self.per_message_cycles + self.wire_cycles(size_bytes)

    def pipelined_cycles(self, size_bytes: int, depth: int) -> float:
        """Per-message cost with ``depth`` overlapping requests."""
        if depth < 1:
            raise RuntimeConfigError("pipeline depth must be >= 1")
        if depth == 1:
            # A depth-1 "pipeline" is just a blocking message; the
            # overlap formula below would double-count the per-message
            # cost (once inside the round-trip, once as issue overhead).
            return self.transfer_cycles(size_bytes)
        overlap = (self.latency_cycles + self.per_message_cycles) / depth
        return max(self.wire_cycles(size_bytes), overlap) + self.per_message_cycles / depth

    # -- accounted transfers ----------------------------------------------

    def transfer(
        self,
        size_bytes: int,
        direction: TransferDirection,
        depth: int = 1,
    ) -> float:
        """Account one message and return its cycle cost.

        With a fault schedule installed, a lost message raises
        :class:`~repro.errors.TransientNetworkError` *before* any stats
        accounting — a dropped message moved no bytes and its cost is
        charged by the retry policy (timeout + backoff), not the link.
        """
        if size_bytes < 0:
            raise RuntimeConfigError("cannot transfer a negative size")
        if depth < 1:
            raise RuntimeConfigError("pipeline depth must be >= 1")
        faults = self.faults
        extra = faults.roll(size_bytes) if faults is not None else 0.0
        cost = (
            self.transfer_cycles(size_bytes)
            if depth == 1
            else self.pipelined_cycles(size_bytes, depth)
        ) + extra
        self.stats.messages += 1
        if direction is TransferDirection.FETCH:
            self.stats.bytes_fetched += size_bytes
        else:
            self.stats.bytes_evicted += size_bytes
        self.stats.busy_cycles += cost
        return cost
