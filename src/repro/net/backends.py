"""Remote-memory backends: the far node seen through a link.

Calibration targets (Table 2, §4.1):

* Fastswap's one-sided RDMA fetch of a 4 KB page costs ~34K cycles end
  to end, of which ~1.3K is kernel fault handling — so the RDMA
  backend's blocking 4 KB fetch is tuned to ~32.7K cycles.
* TrackFM's slow-path guard on a remote object costs ~35K cycles end to
  end over AIFM's TCP (Shenango) backend, of which ~0.45K is the guard —
  so the TCP backend's blocking 4 KB fetch is tuned to ~34.5K cycles.

The TCP backend has a higher per-message software cost but supports deep
pipelining (Shenango's user-level tasking), which is what prefetching
exploits; one-sided RDMA has lower latency but Fastswap issues it from
the page-fault path, one page at a time (plus kernel readahead, modelled
in the Fastswap runtime itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.link import (
    BYTES_PER_CYCLE_25G,
    NetworkLink,
    TransferDirection,
)


@dataclass
class RemoteBackend:
    """A far node reachable over a link; counts fetches and evictions."""

    link: NetworkLink
    name: str = "remote"

    def fetch(self, size_bytes: int, depth: int = 1) -> float:
        """Pull ``size_bytes`` from the remote node; returns cycles."""
        return self.link.transfer(size_bytes, TransferDirection.FETCH, depth)

    def evict(self, size_bytes: int, depth: int = 1) -> float:
        """Push ``size_bytes`` back to the remote node; returns cycles."""
        return self.link.transfer(size_bytes, TransferDirection.EVICT, depth)

    def fetch_cost(self, size_bytes: int, depth: int = 1) -> float:
        """Cost of a fetch without accounting it (planning queries)."""
        if depth <= 1:
            return self.link.transfer_cycles(size_bytes)
        return self.link.pipelined_cycles(size_bytes, depth)

    @property
    def bytes_fetched(self) -> int:
        return self.link.stats.bytes_fetched

    @property
    def bytes_evicted(self) -> int:
        return self.link.stats.bytes_evicted


class TcpBackend(RemoteBackend):
    """Shenango-style TCP backend (AIFM / TrackFM)."""


class RdmaBackend(RemoteBackend):
    """One-sided RDMA backend (Fastswap)."""


#: Wire time of a 4 KB page at 25 Gb/s is ~3.1K cycles; the remaining
#: budget is split between propagation latency and per-message software
#: cost for each backend.
_PAGE_WIRE = 4096 / BYTES_PER_CYCLE_25G

#: TCP: 4 KB blocking fetch ~= 34.5K cycles (35K minus the ~450-cycle
#: guard).  Software per-message cost dominates (protocol + copies).
TCP_LATENCY_CYCLES = 24_000.0
TCP_PER_MESSAGE_CYCLES = 34_500.0 - TCP_LATENCY_CYCLES - _PAGE_WIRE

#: RDMA: 4 KB blocking fetch ~= 32.7K cycles (34K minus ~1.3K fault
#: handling).  NIC doorbell + DMA; lower per-message software cost.
RDMA_LATENCY_CYCLES = 28_000.0
RDMA_PER_MESSAGE_CYCLES = 32_700.0 - RDMA_LATENCY_CYCLES - _PAGE_WIRE


def make_tcp_backend() -> TcpBackend:
    """A TCP backend calibrated to the paper's TrackFM remote costs."""
    link = NetworkLink(
        latency_cycles=TCP_LATENCY_CYCLES,
        bytes_per_cycle=BYTES_PER_CYCLE_25G,
        per_message_cycles=TCP_PER_MESSAGE_CYCLES,
    )
    return TcpBackend(link, name="tcp")


def make_rdma_backend() -> RdmaBackend:
    """An RDMA backend calibrated to the paper's Fastswap remote costs."""
    link = NetworkLink(
        latency_cycles=RDMA_LATENCY_CYCLES,
        bytes_per_cycle=BYTES_PER_CYCLE_25G,
        per_message_cycles=RDMA_PER_MESSAGE_CYCLES,
    )
    return RdmaBackend(link, name="rdma")
