"""Remote-memory backends: the far node seen through a link.

Calibration targets (Table 2, §4.1):

* Fastswap's one-sided RDMA fetch of a 4 KB page costs ~34K cycles end
  to end, of which ~1.3K is kernel fault handling — so the RDMA
  backend's blocking 4 KB fetch is tuned to ~32.7K cycles.
* TrackFM's slow-path guard on a remote object costs ~35K cycles end to
  end over AIFM's TCP (Shenango) backend, of which ~0.45K is the guard —
  so the TCP backend's blocking 4 KB fetch is tuned to ~34.5K cycles.

The TCP backend has a higher per-message software cost but supports deep
pipelining (Shenango's user-level tasking), which is what prefetching
exploits; one-sided RDMA has lower latency but Fastswap issues it from
the page-fault path, one page at a time (plus kernel readahead, modelled
in the Fastswap runtime itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import FarMemoryUnavailableError, TransientNetworkError
from repro.integrity.checker import attach_integrity
from repro.integrity.config import default_integrity_config
from repro.net.faults import CircuitBreaker, RetryPolicy, default_fault_plan
from repro.net.link import (
    BYTES_PER_CYCLE_25G,
    NetworkLink,
    TransferDirection,
)


@dataclass
class RemoteBackend:
    """A far node reachable over a link; counts fetches and evictions.

    Without a :class:`RetryPolicy` or :class:`CircuitBreaker` the
    backend is a thin pass-through to the link (two ``is None`` checks
    on the hot path).  With either installed, ``fetch``/``evict`` absorb
    :class:`TransientNetworkError` from a fault-injected link: each loss
    is charged a detection timeout plus backoff, retried up to the
    policy's limits, and fed to the breaker; exhaustion or an open
    breaker raises :class:`FarMemoryUnavailableError`.
    """

    link: NetworkLink
    name: str = "remote"
    retry_policy: Optional[RetryPolicy] = None
    breaker: Optional[CircuitBreaker] = None
    #: Optional :class:`repro.sim.metrics.Metrics` that retry/timeout/
    #: drop counters flow into (wired by the owning pool/runtime).
    metrics: Optional[object] = None
    #: Optional tracer for ``fault``/``retry`` events (wired alongside
    #: the owning runtime's tracer).
    tracer: Optional[object] = None
    #: Optional :class:`repro.integrity.IntegrityChecker` — when set,
    #: fetches that name an ``obj_id`` are checksum-verified (and
    #: repaired / quarantined) before the data is trusted.
    integrity: Optional[object] = None

    @property
    def resilient(self) -> bool:
        return self.retry_policy is not None or self.breaker is not None

    def fetch(
        self, size_bytes: int, depth: int = 1, obj_id: Optional[int] = None
    ) -> float:
        """Pull ``size_bytes`` from the remote node; returns cycles.

        With an integrity checker attached and an ``obj_id`` named, the
        payload is verified after the transfer (detect → bounded repair
        → quarantine); without either, the extra cost is one ``is
        None`` check.
        """
        if self.retry_policy is None and self.breaker is None:
            cost = self.link.transfer(size_bytes, TransferDirection.FETCH, depth)
        else:
            cost = self._resilient_cost(
                lambda: self.link.transfer(size_bytes, TransferDirection.FETCH, depth)
            )
        if self.integrity is not None and obj_id is not None:
            cost += self.verify_payload(obj_id, size_bytes, depth)
        return cost

    def evict(self, size_bytes: int, depth: int = 1) -> float:
        """Push ``size_bytes`` back to the remote node; returns cycles."""
        if self.retry_policy is None and self.breaker is None:
            return self.link.transfer(size_bytes, TransferDirection.EVICT, depth)
        return self._resilient_cost(
            lambda: self.link.transfer(size_bytes, TransferDirection.EVICT, depth)
        )

    def admit(self, size_bytes: int) -> float:
        """Resilience penalty for one transfer whose base cost lives elsewhere.

        The Fastswap runtime charges its *calibrated* end-to-end fault
        cost directly (and bumps link stats by hand), so it must not pay
        the link's transfer cost a second time.  ``admit`` rolls the
        fault schedule for one message and returns only the extra cycles
        faults and retries add on top — zero on a healthy link.
        """
        faults = self.link.faults
        if faults is None:
            return 0.0
        if self.retry_policy is None and self.breaker is None:
            return faults.roll(size_bytes)
        return self._resilient_cost(lambda: faults.roll(size_bytes))

    # -- integrity ---------------------------------------------------------

    def _payload_transfer(self, size_bytes: int, direction, depth: int) -> float:
        """One repair transfer, under the retry machinery when armed."""
        if self.retry_policy is None and self.breaker is None:
            return self.link.transfer(size_bytes, direction, depth)
        return self._resilient_cost(
            lambda: self.link.transfer(size_bytes, direction, depth)
        )

    def verify_payload(self, obj_id: int, size_bytes: int, depth: int = 1) -> float:
        """Checksum-verify one already-fetched payload; returns cycles.

        The explicit entry point for paths that account their transfer
        cost elsewhere (Fastswap's calibrated fault path, pool
        prefetch).  Raises :class:`~repro.errors.DataIntegrityError`
        when the object ends up quarantined.
        """
        integrity = self.integrity
        if integrity is None:
            return 0.0
        return integrity.verify_fetch(
            obj_id,
            size_bytes,
            refetch=lambda: self._payload_transfer(
                size_bytes, TransferDirection.FETCH, depth
            ),
            rewrite=lambda: self._payload_transfer(
                size_bytes, TransferDirection.EVICT, depth
            ),
        )

    def payload_rewrite(self, size_bytes: int, depth: int = 1) -> float:
        """Re-drive one writeback payload (journal replay); returns cycles."""
        return self._payload_transfer(size_bytes, TransferDirection.EVICT, depth)

    def set_tracer(self, tracer) -> None:
        """Point the backend (and its integrity checker) at ``tracer``."""
        self.tracer = tracer
        if self.integrity is not None:
            self.integrity.tracer = tracer

    # -- retry / breaker core ---------------------------------------------

    def _resilient_cost(self, attempt_fn: Callable[[], float]) -> float:
        """Run ``attempt_fn`` under the retry policy and breaker.

        Returns the attempt's cost plus all accumulated penalty cycles
        (timeouts + backoffs).  Raises ``FarMemoryUnavailableError``
        when the breaker rejects the request or retries are exhausted.
        """
        policy = self.retry_policy
        breaker = self.breaker
        penalty = 0.0
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                raise FarMemoryUnavailableError(
                    f"{self.name}: circuit breaker open "
                    f"({breaker.consecutive_failures} consecutive failures)"
                )
            attempt += 1
            try:
                cost = attempt_fn()
            except TransientNetworkError as err:
                if breaker is not None:
                    breaker.record_failure()
                timeout = policy.timeout_cycles if policy is not None else 0.0
                penalty += timeout
                self._count("drops")
                self._count("timeouts")
                tracer = self.tracer
                if tracer is not None and tracer.enabled:
                    tracer.fault(err.kind, err.message_index, self._now())
                if policy is None or not policy.should_retry(attempt):
                    raise FarMemoryUnavailableError(
                        f"{self.name}: gave up after {attempt} attempt(s) "
                        f"(last loss: {err})"
                    ) from err
                backoff = policy.backoff_cycles(attempt)
                policy.consume_retry()
                penalty += backoff
                self._count("retries")
                if tracer is not None and tracer.enabled:
                    tracer.retry(attempt, backoff, self._now())
                continue
            if breaker is not None:
                breaker.record_success()
            return cost + penalty

    def _count(self, counter: str, n: int = 1) -> None:
        metrics = self.metrics
        if metrics is not None:
            setattr(metrics, counter, getattr(metrics, counter) + n)

    def _now(self) -> float:
        """Timestamp for fault/retry trace events (simulated cycles)."""
        metrics = self.metrics
        if metrics is not None:
            return float(metrics.cycles)
        return self.link.stats.busy_cycles

    def fetch_cost(self, size_bytes: int, depth: int = 1) -> float:
        """Cost of a fetch without accounting it (planning queries)."""
        if depth <= 1:
            return self.link.transfer_cycles(size_bytes)
        return self.link.pipelined_cycles(size_bytes, depth)

    @property
    def bytes_fetched(self) -> int:
        return self.link.stats.bytes_fetched

    @property
    def bytes_evicted(self) -> int:
        return self.link.stats.bytes_evicted


class TcpBackend(RemoteBackend):
    """Shenango-style TCP backend (AIFM / TrackFM)."""


class RdmaBackend(RemoteBackend):
    """One-sided RDMA backend (Fastswap)."""


#: Wire time of a 4 KB page at 25 Gb/s is ~3.1K cycles; the remaining
#: budget is split between propagation latency and per-message software
#: cost for each backend.
_PAGE_WIRE = 4096 / BYTES_PER_CYCLE_25G

#: TCP: 4 KB blocking fetch ~= 34.5K cycles (35K minus the ~450-cycle
#: guard).  Software per-message cost dominates (protocol + copies).
TCP_LATENCY_CYCLES = 24_000.0
TCP_PER_MESSAGE_CYCLES = 34_500.0 - TCP_LATENCY_CYCLES - _PAGE_WIRE

#: RDMA: 4 KB blocking fetch ~= 32.7K cycles (34K minus ~1.3K fault
#: handling).  NIC doorbell + DMA; lower per-message software cost.
RDMA_LATENCY_CYCLES = 28_000.0
RDMA_PER_MESSAGE_CYCLES = 32_700.0 - RDMA_LATENCY_CYCLES - _PAGE_WIRE


def _apply_default_faults(backend: RemoteBackend) -> RemoteBackend:
    """Arm ``backend`` with the process-default fault plan, if any.

    Each backend gets a *fresh* schedule, policy and breaker (never
    shared mutable state), so two backends built under the same plan
    see identical fault sequences — the determinism the chaos suite
    pins.  The retry policy's jitter seed follows the plan seed.
    """
    plan = default_fault_plan()
    if plan is not None:
        backend.link.faults = plan.schedule()
        backend.retry_policy = RetryPolicy(seed=plan.seed)
        backend.breaker = CircuitBreaker()
    config = default_integrity_config()
    if config is not None and config.enabled:
        attach_integrity(backend, config)
    return backend


def make_tcp_backend() -> TcpBackend:
    """A TCP backend calibrated to the paper's TrackFM remote costs."""
    link = NetworkLink(
        latency_cycles=TCP_LATENCY_CYCLES,
        bytes_per_cycle=BYTES_PER_CYCLE_25G,
        per_message_cycles=TCP_PER_MESSAGE_CYCLES,
    )
    return _apply_default_faults(TcpBackend(link, name="tcp"))


def make_rdma_backend() -> RdmaBackend:
    """An RDMA backend calibrated to the paper's Fastswap remote costs."""
    link = NetworkLink(
        latency_cycles=RDMA_LATENCY_CYCLES,
        bytes_per_cycle=BYTES_PER_CYCLE_25G,
        per_message_cycles=RDMA_PER_MESSAGE_CYCLES,
    )
    return _apply_default_faults(RdmaBackend(link, name="rdma"))


#: Seed salt mixed into a shard's fault-plan seed so every shard of a
#: cluster replays an *independent* (but still deterministic) schedule.
SHARD_SEED_SALT = 0x5EED_5A17


def make_shard_backend(kind: str, shard_id: int, plan=None) -> RemoteBackend:
    """A far node for one shard: its own link, schedule, policy, breaker.

    Shards are independent fault domains: nothing mutable is shared
    between two shards' backends, and when a ``plan`` is given each
    shard rolls it under a seed derived from ``(plan.seed, shard_id)``
    — so shard 3 of an 8-shard cluster sees the same fault sequence on
    every run, regardless of what the other shards do.

    Unlike the process-default factories, the retry policy and breaker
    are *always* armed (even with no plan): a serving cluster must be
    able to lose a shard mid-run, and the loss path runs through the
    retry/breaker machinery.
    """
    if kind == "tcp":
        backend: RemoteBackend = TcpBackend(
            NetworkLink(
                latency_cycles=TCP_LATENCY_CYCLES,
                bytes_per_cycle=BYTES_PER_CYCLE_25G,
                per_message_cycles=TCP_PER_MESSAGE_CYCLES,
            ),
            name=f"tcp-shard{shard_id}",
        )
    elif kind == "rdma":
        backend = RdmaBackend(
            NetworkLink(
                latency_cycles=RDMA_LATENCY_CYCLES,
                bytes_per_cycle=BYTES_PER_CYCLE_25G,
                per_message_cycles=RDMA_PER_MESSAGE_CYCLES,
            ),
            name=f"rdma-shard{shard_id}",
        )
    else:
        raise ValueError(f"unknown backend kind {kind!r} (want 'tcp' or 'rdma')")
    seed = shard_id ^ SHARD_SEED_SALT
    if plan is not None and not plan.is_noop:
        shard_plan = plan.reseeded(plan.seed ^ seed)
        backend.link.faults = shard_plan.schedule()
        seed = shard_plan.seed
    backend.retry_policy = RetryPolicy(seed=seed)
    backend.breaker = CircuitBreaker()
    return backend
