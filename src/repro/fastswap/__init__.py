"""Fastswap baseline: kernel paging to remote memory over RDMA.

Fastswap (Amaro et al., EuroSys '20) modifies the Linux swap subsystem
to back swap space with a remote node's DRAM via one-sided RDMA.  Its
defining behaviours — the ones the paper's comparisons hinge on — are:

* **page granularity**: every transfer is an architected 4 KB page, so
  fine-grained workloads suffer I/O amplification (Figs. 13/16);
* **fault cost**: a major fault costs ~34K cycles end to end, ~1.3K of
  which is kernel software overhead (Table 2); resident pages cost
  *nothing* extra (hardware page tables), which is why Fastswap wins
  when temporal locality is high (§4.5, memcached at high skew);
* **cgroups reclaim**: under memory pressure, each page brought in
  forces direct reclaim of another, adding kernel overhead on the
  critical path.
"""

from repro.fastswap.runtime import FastswapRuntime, FastswapConfig

__all__ = ["FastswapRuntime", "FastswapConfig"]
