"""The Fastswap runtime simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import (
    DataIntegrityError,
    FarMemoryUnavailableError,
    PointerError,
    RuntimeConfigError,
)
from repro.integrity import (
    IntegrityChecker,
    IntegrityConfig,
    RecoveryManager,
    RecoveryReport,
    attach_integrity,
)
from repro.machine.costs import AccessKind, CostTable, DEFAULT_COSTS
from repro.net.backends import RemoteBackend, make_rdma_backend
from repro.sim.metrics import Metrics
from repro.sim.residency import ResidencySet
from repro.trace.tracer import NULL_TRACER
from repro.units import BASE_PAGE, align_up, ceil_div, is_power_of_two, log2_exact


@dataclass
class FastswapConfig:
    """Sizing knobs for the kernel-swap baseline."""

    #: Bytes of local memory (the cgroup limit the paper sweeps).
    local_memory: int
    #: Total application heap (swap-backed working set).
    heap_size: int
    #: Architected page size — fixed by hardware, the point of Fig. 13.
    page_size: int = BASE_PAGE
    #: Kernel cycles of direct reclaim per evicted page under pressure
    #: (cgroup accounting + unmap + TLB shootdown).
    reclaim_cycles: float = 2_000.0
    #: Fraction of dirty-page writeback charged synchronously.
    writeback_sync_fraction: float = 0.25
    #: Reclaim victim selection: CLOCK second-chance (the Linux
    #: active/inactive approximation) vs strict LRU — the ablation
    #: engine's evacuation-policy knob flips this to LRU.
    use_clock: bool = True
    costs: CostTable = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.page_size):
            raise RuntimeConfigError("page size must be a power of two")
        if self.local_memory < self.page_size:
            raise RuntimeConfigError("local memory smaller than one page")
        if self.heap_size < self.page_size:
            raise RuntimeConfigError("heap smaller than one page")

    @property
    def local_capacity_pages(self) -> int:
        return max(1, self.local_memory // self.page_size)

    @property
    def num_pages(self) -> int:
        return ceil_div(self.heap_size, self.page_size)


class FastswapRuntime:
    """Page-granularity far memory with kernel fault costs.

    Unmodified binaries run as-is: resident pages are reached through the
    hardware page table at zero software cost; only faults cost cycles.
    """

    def __init__(
        self,
        config: FastswapConfig,
        backend: Optional[RemoteBackend] = None,
        tracer=None,
    ) -> None:
        self.config = config
        self.backend = backend if backend is not None else make_rdma_backend()
        self.metrics = Metrics()
        if self.backend.metrics is None:
            self.backend.metrics = self.metrics
        integrity = self.backend.integrity
        if integrity is not None and integrity.metrics is None:
            integrity.metrics = self.metrics
        #: Trace sink (disabled by default: one attribute check per event site).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Degraded-mode hook, same contract as the object pool's:
        #: ``handler(page) -> stall cycles`` serves a major fault locally
        #: when the remote tier is unavailable.
        self.degraded_handler = None
        self.page_shift = log2_exact(config.page_size)
        # Linux reclaim approximates LRU with active/inactive lists;
        # CLOCK-style second chance is the closest simple model (strict
        # LRU reachable via config for the evacuation-policy ablation).
        self.residency = ResidencySet(
            config.local_capacity_pages, use_clock=config.use_clock
        )
        self._brk = 0

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to this runtime and its backend."""
        self.tracer = tracer
        self.backend.set_tracer(tracer)

    @property
    def integrity(self) -> Optional[IntegrityChecker]:
        """The backend's integrity checker (None when verification is off)."""
        return self.backend.integrity

    def enable_integrity(
        self, config: Optional[IntegrityConfig] = None
    ) -> IntegrityChecker:
        """Checksum-verify every swapped-in page (detect → repair → quarantine).

        The per-page checksum tag lives in a simulated page-table
        sidecar (see :meth:`page_table_entry`); dirty-page writebacks
        start following the write-ahead journal.  Returns the checker.
        """
        checker = attach_integrity(self.backend, config)
        checker.metrics = self.metrics
        checker.tracer = self.tracer
        return checker

    def recover(self) -> RecoveryReport:
        """Replay/roll back the journal after an injected crash.

        Intent-only (torn) page writebacks are rolled back by
        reinstating the page resident + dirty; durable uncommitted ones
        are re-driven over the wire and committed.
        """
        checker = self.backend.integrity
        if checker is None:
            raise RuntimeConfigError(
                "runtime has no integrity checker; call enable_integrity() first"
            )
        manager = RecoveryManager(
            checker,
            self.backend,
            self.page_size,
            writeback_depth=1,  # kernel writeback: one page per wire op
            reinstate=self._reinstate_page,
            reconcile=None,  # residency is the page table; nothing aliases it
        )
        return manager.recover()

    def _reinstate_page(self, page: int) -> float:
        """Undo a rolled-back writeback: page resident + dirty again.

        Mirrors the object pool's recovery hook: cycles (reclaim +
        victim writeback) are self-accounted into ``metrics.cycles``.
        """
        outcome = self.residency.access(page, write=True)
        cycles = 0.0
        for _victim, dirty in outcome.evicted:
            cycles += self.config.reclaim_cycles
            self.metrics.evictions += 1
            if dirty:
                wb = self.backend.link.wire_cycles(self.page_size)
                cycles += wb * self.config.writeback_sync_fraction
                self.metrics.bytes_evacuated += self.page_size
                self.backend.link.stats.bytes_evicted += self.page_size
        self.metrics.cycles += cycles
        return cycles

    def page_table_entry(self, page: int) -> Tuple[bool, bool, Optional[int]]:
        """Simulated PTE view: ``(resident, dirty, checksum tag)``.

        The tag is the sidecar checksum the page's remote copy must
        verify against (None with integrity off) — the page-granular
        analogue of :class:`~repro.aifm.objectmeta.ObjectMeta.check`.
        """
        if page < 0 or page >= self.config.num_pages:
            raise PointerError(f"page {page} out of range [0, {self.config.num_pages})")
        resident = page in self.residency
        dirty = self.residency.is_dirty(page) if resident else False
        integrity = self.backend.integrity
        check = integrity.expected_check(page) if integrity is not None else None
        return resident, dirty, check

    def enable_degraded_mode(self, stall_cycles: float = 0.0, hook=None) -> None:
        """Serve major faults locally when far memory is unavailable."""
        if hook is not None:
            self.degraded_handler = hook
        else:
            self.degraded_handler = lambda _page: stall_cycles

    def remote_backends(self) -> Tuple[RemoteBackend, ...]:
        """Every far node this runtime talks to (one: the swap target).

        Uniform across the four runtimes; the serving layer uses it to
        treat each shard's backends as one fault domain.
        """
        return (self.backend,)

    @property
    def page_size(self) -> int:
        return self.config.page_size

    # -- allocation: plain heap, page-aligned bump ---------------------------

    def allocate(self, size: int) -> int:
        """sbrk-style allocation; returns the heap offset."""
        if size <= 0:
            size = 1
        offset = self._brk
        self._brk = align_up(self._brk + size, 16)
        if self._brk > self.config.heap_size:
            raise PointerError("Fastswap heap exhausted")
        return offset

    def page_of(self, offset: int) -> int:
        if offset < 0 or offset >= self.config.heap_size:
            raise PointerError(f"offset {offset:#x} outside the heap")
        return offset >> self.page_shift

    # -- the access path ----------------------------------------------------

    def access(
        self,
        offset: int,
        kind: AccessKind = AccessKind.READ,
        size: int = 8,
    ) -> float:
        """One load/store; returns cycles (fault handling if any + access)."""
        costs = self.config.costs
        cycles = costs.local_access
        first = self.page_of(offset)
        last = self.page_of(offset + size - 1)
        for page in range(first, last + 1):
            cycles += self._touch_page(page, kind)
        self.metrics.accesses += 1
        self.metrics.cycles += cycles
        return cycles

    def _touch_page(self, page: int, kind: AccessKind) -> float:
        outcome = self.residency.access(page, write=kind is AccessKind.WRITE)
        if outcome.hit:
            return 0.0
        backend = self.backend
        fault_cycles = self.config.costs.fastswap_fault(kind, remote=True)
        degraded = False
        # The fault cost above is *calibrated* end to end, so the swap-in
        # itself never goes through backend.fetch (it would double-charge
        # the link).  With faults installed, admit() rolls the schedule
        # for this one message and adds only the retry/spike penalty.
        if backend.link.faults is not None or backend.resilient:
            try:
                fault_cycles += backend.admit(self.page_size)
            except FarMemoryUnavailableError:
                handler = self.degraded_handler
                if handler is None:
                    self.residency.discard(page)
                    raise
                degraded = True
                fault_cycles = handler(page)
                self.metrics.degraded_accesses += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.degrade("page", self.metrics.cycles, page=page)
        cycles = fault_cycles
        if not degraded:
            self.metrics.major_faults += 1
            self.metrics.remote_fetches += 1
            self.metrics.bytes_fetched += self.page_size
            self.backend.link.stats.messages += 1
            self.backend.link.stats.bytes_fetched += self.page_size
            tracer = self.tracer
            if tracer.enabled:
                tracer.fetch(
                    self.page_size, fault_cycles, self.metrics.cycles,
                    obj_id=page, name="major_fault",
                )
            if backend.integrity is not None:
                try:
                    cycles += backend.verify_payload(page, self.page_size)
                except DataIntegrityError:
                    # Quarantined: the swapped-in page is untrustworthy.
                    self.residency.discard(page)
                    raise
        integrity = backend.integrity
        for victim, dirty in outcome.evicted:
            cycles += self.config.reclaim_cycles
            self.metrics.evictions += 1
            if dirty:
                if integrity is not None:
                    integrity.begin_writeback(victim)
                wb = self.backend.link.wire_cycles(self.page_size)
                cycles += wb * self.config.writeback_sync_fraction
                self.metrics.bytes_evacuated += self.page_size
                self.backend.link.stats.bytes_evicted += self.page_size
                if integrity is not None:
                    integrity.finish_writeback(victim)
            if tracer.enabled:
                tracer.evict(
                    self.page_size, self.metrics.cycles,
                    dirty=int(dirty), name="reclaim",
                )
        return cycles

    # -- closed-form scan ------------------------------------------------------

    def sequential_scan(
        self,
        offset: int,
        n_elems: int,
        elem_size: int,
        kind: AccessKind = AccessKind.READ,
        resident_fraction: float = 0.0,
        body_cycles: Optional[float] = None,
        under_pressure: bool = True,
    ) -> float:
        """Bulk cost of a sequential loop at page granularity.

        ``under_pressure`` adds per-page direct reclaim when local
        memory is full (the common case in the sweeps).
        """
        if n_elems <= 0:
            return 0.0
        if not 0.0 <= resident_fraction <= 1.0:
            raise RuntimeConfigError("resident_fraction must be in [0, 1]")
        costs = self.config.costs
        body = costs.local_access if body_cycles is None else body_cycles
        total_bytes = n_elems * elem_size
        n_pages = max(1, ceil_div(total_bytes, self.page_size))
        misses = int(round(n_pages * (1.0 - resident_fraction)))

        cycles = n_elems * body
        cycles += misses * costs.fastswap_fault(kind, remote=True)
        if misses and self.backend.integrity is not None:
            # Closed-form scans verify each swapped-in page's checksum
            # (no corruption rolls: the closed form models the
            # healthy-payload cost envelope).
            cycles += misses * self.backend.integrity.config.verify_cycles
        if under_pressure:
            cycles += misses * self.config.reclaim_cycles
            self.metrics.evictions += misses
        self.metrics.major_faults += misses
        self.metrics.remote_fetches += misses
        self.metrics.bytes_fetched += misses * self.page_size
        self.backend.link.stats.messages += misses
        self.backend.link.stats.bytes_fetched += misses * self.page_size
        tracer = self.tracer
        if tracer.enabled and misses:
            tracer.fetch(
                misses * self.page_size, costs.fastswap_fault(kind, remote=True),
                self.metrics.cycles, n=misses, name="scan_fault",
            )
        if kind is AccessKind.WRITE and misses:
            wb = self.backend.link.wire_cycles(self.page_size)
            cycles += misses * wb * self.config.writeback_sync_fraction
            self.metrics.bytes_evacuated += misses * self.page_size
            self.backend.link.stats.bytes_evicted += misses * self.page_size
            if tracer.enabled:
                tracer.evict(
                    misses * self.page_size, self.metrics.cycles,
                    n=misses, dirty=misses, name="scan_writeback",
                )
        self.metrics.accesses += n_elems
        self.metrics.cycles += cycles
        return cycles

    # -- Table 2 probes -------------------------------------------------------

    def fault_probe(self, kind: AccessKind, remote: bool) -> float:
        """Cost of a single fault event (Table 2 microprobe)."""
        cycles = self.config.costs.fastswap_fault(kind, remote)
        if remote:
            self.metrics.major_faults += 1
        else:
            self.metrics.minor_faults += 1
        return cycles
