"""Open-loop traffic: thousands of simulated clients, seeded end to end.

A *closed-loop* client waits for its previous response before issuing
the next request, so overload shows up as the client slowing down.
Production traffic is open-loop: arrivals keep coming at the offered
rate whether or not the servers keep up, which is what makes tail
latency explode past saturation — the regime the serving layer exists
to measure.

Each client is an independent Poisson-ish arrival process (exponential
inter-arrivals with a configured mean) issuing reads/writes over keys
drawn from :class:`repro.workloads.zipf.ZipfGenerator` — skewed
popularity is what creates per-shard hot spots.  Everything is drawn
from one seeded numpy generator, vectorized, and then merged into one
time-sorted schedule: the same :class:`TrafficConfig` produces a
bit-identical schedule on every run, which the serving baselines and
the determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RuntimeConfigError
from repro.workloads.zipf import ZipfGenerator


@dataclass(frozen=True)
class TrafficConfig:
    """The offered load: who sends what, when."""

    #: Simulated open-loop clients.
    clients: int
    #: Requests each client issues over the run.
    requests_per_client: int
    #: Distinct keys in the keyspace (Zipf ranks 0..n_keys-1).
    n_keys: int
    #: Zipf skew of key popularity (the paper's hashmap skew band).
    zipf_skew: float = 1.02
    #: Mean inter-arrival gap per client, in simulated cycles.
    mean_interarrival_cycles: float = 400_000.0
    #: Fraction of requests that are writes.
    write_fraction: float = 0.25
    #: Tenants; client ``c`` belongs to tenant ``c % tenants``.
    tenants: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1 or self.requests_per_client < 1:
            raise RuntimeConfigError("clients and requests_per_client must be >= 1")
        if self.n_keys < 1:
            raise RuntimeConfigError("n_keys must be >= 1")
        if self.mean_interarrival_cycles <= 0:
            raise RuntimeConfigError("mean_interarrival_cycles must be > 0")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise RuntimeConfigError("write_fraction must be in [0, 1]")
        if self.tenants < 1:
            raise RuntimeConfigError("tenants must be >= 1")

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


@dataclass(frozen=True)
class Schedule:
    """The materialized arrival schedule, time-sorted.

    Parallel numpy arrays, one row per request: ``times`` (float64
    cycles), ``clients``/``tenants``/``keys`` (int64) and ``writes``
    (bool).  Iterate with :meth:`rows`.
    """

    config: TrafficConfig
    times: np.ndarray = field(repr=False)
    clients: np.ndarray = field(repr=False)
    tenants: np.ndarray = field(repr=False)
    keys: np.ndarray = field(repr=False)
    writes: np.ndarray = field(repr=False)

    def __len__(self) -> int:
        return len(self.times)

    def rows(self):
        """Yield ``(time, client, tenant, key, is_write)`` in time order."""
        for i in range(len(self.times)):
            yield (
                float(self.times[i]),
                int(self.clients[i]),
                int(self.tenants[i]),
                int(self.keys[i]),
                bool(self.writes[i]),
            )

    def fingerprint(self) -> int:
        """A 64-bit digest of the whole schedule (determinism checks)."""
        acc = 0xCBF29CE484222325
        for arr in (
            np.round(self.times, 6).view(np.uint64),
            self.clients.view(np.uint64),
            self.keys.view(np.uint64),
            self.writes.astype(np.uint64),
        ):
            for chunk in np.bitwise_xor.reduce(arr, keepdims=True):
                acc = (acc ^ int(chunk)) * 0x100000001B3 & ((1 << 64) - 1)
        return acc


def generate_schedule(config: TrafficConfig) -> Schedule:
    """Materialize the deterministic arrival schedule for ``config``.

    Per client: inter-arrival gaps are exponential draws (open loop —
    the cumulative sums are the arrival times, independent of service).
    Keys come from one shared :class:`ZipfGenerator` stream; ties in
    arrival time are broken by ``(client, per-client index)`` so the
    global order is total and reproducible.
    """
    rng = np.random.default_rng(config.seed)
    n, rpc = config.clients, config.requests_per_client
    gaps = rng.exponential(config.mean_interarrival_cycles, size=(n, rpc))
    times = np.cumsum(gaps, axis=1).reshape(-1)
    client_ids = np.repeat(np.arange(n, dtype=np.int64), rpc)
    seq = np.tile(np.arange(rpc, dtype=np.int64), n)

    zipf = ZipfGenerator(config.n_keys, config.zipf_skew, seed=config.seed ^ 0x5EED)
    keys = zipf.sample(n * rpc)
    writes = rng.random(n * rpc) < config.write_fraction

    order = np.lexsort((seq, client_ids, times))
    return Schedule(
        config=config,
        times=times[order],
        clients=client_ids[order],
        tenants=(client_ids[order] % config.tenants),
        keys=keys[order],
        writes=writes[order],
    )
