"""Consistent-hash placement: keys onto far-node shards, via a ring.

The serving layer spreads one logical object pool across N far nodes.
Placement must (a) balance load, (b) be a pure function of the shard
set — two runs with the same shards place every key identically, which
the serving baselines pin bit-for-bit — and (c) move as few keys as
possible when the shard set changes, because every moved key is either
a migration (survivor → survivor) or a re-seed (lost shard → survivor)
paid for over the wire.

The classic construction delivers all three: each shard contributes
``vnodes`` points on a 64-bit ring (splitmix64 of ``(shard, replica)``
— no ``random`` module, no wall clock), a key is owned by the first
point clockwise from its own hash, and removing a shard only reassigns
keys whose successor point belonged to it.  The two movement properties
the Hypothesis suite pins are exact, not statistical:

* **leave**: keys not owned by the leaving shard keep their owner;
* **join**: keys that change owner all move *to* the joining shard.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import RuntimeConfigError

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 round (same mixer as ``repro.net.faults``)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64

#: Domain separators: ring points and key hashes must never collide
#: structurally (a key equal to a point encoding is still placed fairly).
_POINT_SALT = 0x9
_KEY_SALT = 0xA5


def hash_key(key: int, seed: int = 0) -> int:
    """Position of ``key`` on the ring — pure in ``(key, seed)``."""
    return _splitmix64((seed & _MASK64) ^ _splitmix64((key << 8) | _KEY_SALT))


class HashRing:
    """A consistent-hash ring with virtual nodes.

    ``vnodes`` trades balance for memory/lookup cost: each shard owns
    ``vnodes`` arcs, so relative load imbalance shrinks like
    ``1/sqrt(vnodes)``.  128 is comfortably inside the balance bound
    the property suite enforces for 1–64 shards.
    """

    def __init__(
        self,
        shard_ids: Iterable[int] = (),
        vnodes: int = 128,
        seed: int = 0,
    ) -> None:
        if vnodes < 1:
            raise RuntimeConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._shards: List[int] = []
        #: Sorted, parallel arrays: point positions and owning shards.
        self._points: List[int] = []
        self._owners: List[int] = []
        for sid in shard_ids:
            self.add_shard(sid)

    # -- membership --------------------------------------------------------

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    def _point(self, shard_id: int, replica: int) -> int:
        h = _splitmix64(
            (self.seed & _MASK64)
            ^ _splitmix64(((shard_id << 20) | (replica << 4) | _POINT_SALT))
        )
        # Ties between distinct (shard, replica) points are broken by
        # packing their identity into the low bits: placement stays a
        # pure function of the shard set even under hash collisions.
        return (h << 32) | ((shard_id & 0xFFFF) << 16) | (replica & 0xFFFF)

    def add_shard(self, shard_id: int) -> None:
        if shard_id < 0 or shard_id > 0xFFFF:
            raise RuntimeConfigError(f"shard id {shard_id} outside [0, 65535]")
        if shard_id in self._shards:
            raise RuntimeConfigError(f"shard {shard_id} already on the ring")
        self._shards.append(shard_id)
        for replica in range(min(self.vnodes, 0xFFFF + 1)):
            point = self._point(shard_id, replica)
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, shard_id)

    def remove_shard(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise RuntimeConfigError(f"shard {shard_id} not on the ring")
        self._shards.remove(shard_id)
        keep = [i for i, owner in enumerate(self._owners) if owner != shard_id]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- placement ---------------------------------------------------------

    def place(self, key: int) -> int:
        """The shard owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise RuntimeConfigError("cannot place a key on an empty ring")
        # Key hashes occupy the same doubled-width space as points so
        # the clockwise-successor search is well defined.
        h = hash_key(key, self.seed) << 32
        at = bisect.bisect_right(self._points, h)
        if at == len(self._points):
            at = 0  # wrap: the first point owns the top arc
        return self._owners[at]

    def place_n(self, key: int, n: int) -> Tuple[int, ...]:
        """The replica set of ``key``: ``min(n, len(self))`` distinct shards.

        The clockwise successor walk — collect the owner of each point
        from the key's hash onward, skipping shards already collected —
        makes the set a pure function of the shard set, and gives the
        exact movement laws the replication layer leans on:

        * **leave**: a key whose set did not contain the leaver keeps
          its set; a key whose set did loses exactly that member and
          gains at most one replacement (the next distinct survivor);
        * **join**: the new set is a subset of the old set plus the
          joiner, and a set that does not adopt the joiner is unchanged.

        The first element is the key's *primary* — identical to
        :meth:`place`, so ``place_n(key, 1) == (place(key),)``.
        """
        if n < 1:
            raise RuntimeConfigError(f"replica count must be >= 1, got {n}")
        if not self._points:
            raise RuntimeConfigError("cannot place a key on an empty ring")
        want = min(n, len(self._shards))
        h = hash_key(key, self.seed) << 32
        start = bisect.bisect_right(self._points, h)
        owners = self._owners
        total = len(owners)
        replicas: List[int] = []
        for step in range(total):
            owner = owners[(start + step) % total]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == want:
                    break
        return tuple(replicas)

    def placement(self, keys: Sequence[int], n: int = 1) -> Dict[int, object]:
        """Bulk placement: ``{key: shard}``, or ``{key: replica set}``.

        With the default ``n=1`` this is exactly the historical
        ``{key: shard}`` map (bulk :meth:`place`); with ``n > 1`` each
        value is the :meth:`place_n` replica tuple.
        """
        if n == 1:
            return {key: self.place(key) for key in keys}
        return {key: self.place_n(key, n) for key in keys}

    # -- balance (arc-share view, used by the property suite) ---------------

    def arc_shares(self) -> Dict[int, float]:
        """Fraction of the ring each shard owns (sums to 1.0).

        The *expected* share of uniformly-hashed keys — a deterministic
        quantity, unlike a sampled placement, so balance bounds can be
        asserted exactly.
        """
        if not self._points:
            return {}
        shares: Dict[int, float] = {sid: 0.0 for sid in self._shards}
        span = float(1 << (64 + 32))
        prev = 0
        for point, owner in zip(self._points, self._owners):
            shares[owner] += (point - prev) / span
            prev = point
        # The wrap-around arc (last point → top) belongs to the first point.
        shares[self._owners[0]] += ((1 << (64 + 32)) - prev) / span
        return shares


def moved_keys(
    before: Dict[int, int], after: Dict[int, int]
) -> List[Tuple[int, int, int]]:
    """``(key, old_shard, new_shard)`` for every key whose owner changed."""
    return [
        (key, old, after[key])
        for key, old in before.items()
        if after[key] != old
    ]


def moved_replica_keys(
    before: Dict[int, Tuple[int, ...]], after: Dict[int, Tuple[int, ...]]
) -> List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]]:
    """``(key, old_set, new_set)`` for every key whose *replica set*
    changed as a set (reorderings within an unchanged set don't count —
    replica membership, not coordinator choice, is what costs a copy)."""
    return [
        (key, old, after[key])
        for key, old in before.items()
        if set(after[key]) != set(old)
    ]
