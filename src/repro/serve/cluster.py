"""The sharded cluster: one logical object pool across N far nodes.

Each shard is a complete far-memory stack — its own runtime (any of the
four models), its own :class:`~repro.net.backends.RemoteBackend` with a
private retry policy and circuit breaker, its own metrics bundle and
latency histogram.  Nothing mutable is shared between shards, which is
what makes a shard an *independent fault domain*: arming a dead fault
schedule on shard 3's link (``lose_shard``) trips only shard 3's
breaker, degrades only shard 3's requests, and leaves the other shards'
deterministic schedules untouched.

Keys are placed by the consistent-hash ring (``repro.serve.ring``);
each shard lazily assigns arriving keys to slots in its own heap, so a
shard only pays local-memory pressure for keys it actually owns.

**Data semantics.**  Each shard's key-value store models the far node's
durable contents.  What a loss costs depends on the replication factor:

* **Unreplicated (``replication=1``, the default).**  Losing a shard
  loses its data: requests for its keys are served *degraded* (stale
  reads, non-durable writes — counted in ``degraded_accesses``) until
  ``rebalance()`` removes it from the ring and re-seeds its keys onto
  survivors from their initial values.  Keys on surviving shards never
  notice: the chaos suite pins that their values are bit-identical to
  a fault-free run.
* **Replicated (``replication=R >= 2``).**  Every key lives on R
  distinct shards (:meth:`HashRing.place_n`), writes are applied to
  the whole live replica set with a monotonic per-key version tag
  (committed once ``write_quorum`` replicas ack), reads consult a
  ``read_quorum`` and take the max version (healing stale replicas
  inline — read repair).  A heartbeat failure detector suspects dead
  shards and **failover promotes surviving replicas losslessly**: zero
  keys re-seed as long as one replica survives, and a background
  anti-entropy sweep reconciles replicas that diverged during a
  partition.  ``python -m repro.bench serving --replication 2`` pins
  this posture; R=1 runs stay bit-identical to the historical
  unreplicated baselines.

Joining a shard moves keys *to* it; moved keys that are resident on a
surviving source are migrated through the source pool's evacuator
(dirty ones cross the wire).

**Tenant quotas.**  Per-tenant local-memory quotas bound how much of a
shard's residency one tenant can hold: when a tenant exceeds its
object budget, its least-recently-used object is expelled through the
evacuator.  Quotas apply to object-granular tiers (AIFM, TrackFM, the
hybrid's object side); the kernel-paging tier has no per-tenant view,
exactly as a real cgroup-per-machine deployment would.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import DataIntegrityError, RuntimeConfigError
from repro.machine.costs import AccessKind
from repro.net.backends import make_shard_backend
from repro.net.faults import FaultPlan
from repro.sim.metrics import Metrics
from repro.trace.histogram import StreamingHistogram
from repro.trace.tracer import NULL_TRACER
from repro.serve.replication import (
    FailureDetector,
    HeartbeatChannel,
    ReplicaTag,
    initial_tag,
    resolve_quorums,
)
from repro.serve.ring import HashRing, _splitmix64
from repro.units import BASE_PAGE, KB, align_up

#: Bytes per key slot (one 64-bit value per key).
SLOT_BYTES = 8

#: Stall charged per degraded access on a lost shard (same knob as the
#: trace drivers' degraded mode).
DEGRADED_STALL_CYCLES = 1_000.0

_MASK64 = (1 << 64) - 1

RUNTIME_KINDS = ("aifm", "trackfm", "fastswap", "hybrid", "adaptive")


def default_value(key: int) -> int:
    """The value every key starts with (and re-seeds to after data loss)."""
    return _splitmix64((key << 8) ^ 0xD1CE) & 0x7FFFFFFF


def next_value(key: int, previous: int) -> int:
    """The value after one write — pure in ``(key, previous)``, so a
    key's value is a function of how many writes reached durable state."""
    return (previous * 1009 + key + 1) & 0x7FFFFFFF


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and policy for one sharded serving cluster."""

    n_shards: int
    #: Distinct keys the cluster serves.
    n_keys: int
    #: Which runtime model each shard runs (``RUNTIME_KINDS``).
    runtime: str = "aifm"
    #: AIFM object size within each shard's pool.
    object_size: int = 256
    #: Local memory per shard (the constraint quotas carve up).
    local_memory: int = 8 * KB
    #: Per-tenant residency budget in bytes per shard (None = no quota).
    tenant_quota_bytes: Optional[int] = None
    #: Virtual nodes per shard on the placement ring.
    vnodes: int = 128
    seed: int = 0
    #: Optional base fault plan; each shard replays it under its own
    #: derived seed (independent fault domains).
    fault_plan: Optional[FaultPlan] = None
    degraded_stall_cycles: float = DEGRADED_STALL_CYCLES
    #: Replicas per key (1 = the historical unreplicated posture, whose
    #: request path and reports stay bit-identical to older baselines).
    replication: int = 1
    #: Write/read quorum sizes; ``None`` = write-all / read-one.  Any
    #: explicit pair must satisfy ``W + R > replication``.
    write_quorum: Optional[int] = None
    read_quorum: Optional[int] = None
    #: Failure-detector tuning: heartbeat cadence in simulated cycles
    #: and consecutive misses before a shard is suspected.
    heartbeat_interval_cycles: float = 200_000.0
    suspicion_threshold: int = 3
    #: Fail over suspected shards automatically at detection time.
    auto_failover: bool = True
    #: Background anti-entropy sweep cadence (None = only on demand).
    anti_entropy_interval_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise RuntimeConfigError("n_shards must be >= 1")
        if self.n_keys < 1:
            raise RuntimeConfigError("n_keys must be >= 1")
        if self.runtime not in RUNTIME_KINDS:
            raise RuntimeConfigError(
                f"unknown runtime kind {self.runtime!r}; have {RUNTIME_KINDS}"
            )
        if self.tenant_quota_bytes is not None and self.tenant_quota_bytes < self.object_size:
            raise RuntimeConfigError("tenant quota smaller than one object")
        # Validates replication >= 1 and quorum intersection eagerly.
        resolve_quorums(
            self.effective_replication, self.write_quorum, self.read_quorum
        )
        if self.heartbeat_interval_cycles <= 0:
            raise RuntimeConfigError("heartbeat_interval_cycles must be > 0")
        if self.suspicion_threshold < 1:
            raise RuntimeConfigError("suspicion_threshold must be >= 1")
        if (
            self.anti_entropy_interval_cycles is not None
            and self.anti_entropy_interval_cycles <= 0
        ):
            raise RuntimeConfigError("anti_entropy_interval_cycles must be > 0")

    @property
    def effective_replication(self) -> int:
        """Replicas a key actually gets (bounded by the shard count)."""
        if self.replication < 1:
            return self.replication  # let resolve_quorums raise
        return min(self.replication, self.n_shards)

    @property
    def replicated(self) -> bool:
        return self.effective_replication > 1

    @property
    def quorums(self) -> Tuple[int, int]:
        """The resolved ``(write_quorum, read_quorum)`` pair."""
        return resolve_quorums(
            self.effective_replication, self.write_quorum, self.read_quorum
        )

    @property
    def shard_heap_bytes(self) -> int:
        """Each shard's heap must be able to host *every* key: after
        enough losses one survivor may own the whole keyspace."""
        return align_up(max(self.n_keys * SLOT_BYTES, self.object_size), self.object_size)

    @property
    def tenant_quota_objects(self) -> Optional[int]:
        if self.tenant_quota_bytes is None:
            return None
        return max(1, self.tenant_quota_bytes // self.object_size)


class Shard:
    """One far node: a runtime, its fault domain, and its key slots."""

    def __init__(self, shard_id: int, config: ClusterConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        self.lost = False
        #: Data links dropped (reversible), control plane still up —
        #: the gray-failure regime anti-entropy exists for.
        self.partitioned = False
        #: key -> heap offset of its slot in this shard's heap.
        self.slots: Dict[int, int] = {}
        #: The far node's durable contents (key -> value).
        self.store: Dict[int, int] = {}
        #: Per-key replica metadata (monotonic write version + the
        #: integrity layer's object checksum), kept next to the value.
        self.tags: Dict[int, ReplicaTag] = {}
        #: The control-plane probe channel the failure detector polls.
        self.heartbeat = HeartbeatChannel(shard_id, config.fault_plan)
        self._saved_faults: Optional[list] = None
        #: End-to-end request latency (queue wait + service), cycles.
        self.latency = StreamingHistogram()
        self.requests = 0
        #: Per-tenant residency tracking for quota enforcement:
        #: obj -> owning tenant, and per tenant an LRU of its objects.
        self._obj_tenant: Dict[int, int] = {}
        self._tenant_lru: Dict[int, OrderedDict] = {}
        self._build_runtime()

    # -- runtime adapters ---------------------------------------------------

    def _build_runtime(self) -> None:
        config = self.config
        plan = config.fault_plan
        heap = config.shard_heap_bytes
        if config.runtime == "aifm":
            from repro.aifm.pool import PoolConfig
            from repro.aifm.runtime import AIFMRuntime

            self.runtime = AIFMRuntime(
                PoolConfig(
                    object_size=config.object_size,
                    local_memory=config.local_memory,
                    heap_size=heap,
                ),
                backend=make_shard_backend("tcp", self.shard_id, plan),
            )
            self.runtime.allocate(heap)
            self._base = 0
        elif config.runtime == "trackfm":
            from repro.aifm.pool import PoolConfig
            from repro.trackfm.runtime import TrackFMRuntime

            self.runtime = TrackFMRuntime(
                PoolConfig(
                    object_size=config.object_size,
                    local_memory=config.local_memory,
                    heap_size=heap,
                ),
                backend=make_shard_backend("tcp", self.shard_id, plan),
            )
            self._base = self.runtime.tfm_malloc(heap)
        elif config.runtime == "fastswap":
            from repro.fastswap.runtime import FastswapConfig, FastswapRuntime

            # The kernel-paging tier needs at least one page of both
            # local memory and heap, whatever the cluster sizing says.
            page_heap = max(heap, BASE_PAGE)
            self.runtime = FastswapRuntime(
                FastswapConfig(
                    local_memory=max(config.local_memory, BASE_PAGE),
                    heap_size=page_heap,
                ),
                backend=make_shard_backend("rdma", self.shard_id, plan),
            )
            self._base = self.runtime.allocate(heap)
        elif config.runtime == "adaptive":
            from repro.hybrid.runtime import AdaptiveHybridRuntime

            # A TrackFM-shaped shard whose guards route per-region: the
            # selector moves hot slot regions onto the page tier online.
            self.runtime = AdaptiveHybridRuntime(
                local_memory=max(config.local_memory, 2 * BASE_PAGE),
                heap_size=max(heap, BASE_PAGE),
                object_size=config.object_size,
                object_backend=make_shard_backend("tcp", self.shard_id, plan),
                page_backend=make_shard_backend("rdma", self.shard_id, plan),
            )
            self._base = self.runtime.tfm_malloc(heap)
        else:  # hybrid
            from repro.hybrid.runtime import HybridRuntime, Placement

            page_heap = max(heap, BASE_PAGE)
            self.runtime = HybridRuntime(
                local_memory=max(config.local_memory, 2 * BASE_PAGE),
                heap_size=page_heap,
                object_size=config.object_size,
                object_backend=make_shard_backend("tcp", self.shard_id, plan),
                page_backend=make_shard_backend("rdma", self.shard_id, plan),
            )
            half = max(config.object_size, align_up(heap // 2, config.object_size))
            self._obj_handle = self.runtime.allocate(half, Placement.OBJECTS)
            self._page_handle = self.runtime.allocate(max(heap - half, SLOT_BYTES), Placement.PAGES)
            self._obj_half = half
            self._base = 0
        self._enable_degraded()

    def _enable_degraded(self) -> None:
        stall = self.config.degraded_stall_cycles
        runtime = self.runtime
        if self.config.runtime == "hybrid":
            # The object tier's own rung is the page-tier fallback; the
            # page tier still needs a local degraded mode for a total
            # shard outage.
            runtime.fastswap.enable_degraded_mode(stall_cycles=stall)
        else:
            runtime.enable_degraded_mode(stall_cycles=stall)

    @property
    def pool(self):
        """The shard's object pool, if its runtime kind has one."""
        if self.config.runtime in ("aifm", "trackfm", "adaptive"):
            return self.runtime.pool
        if self.config.runtime == "hybrid":
            return self.runtime.trackfm.pool
        return None

    @property
    def metrics(self) -> Metrics:
        return self.runtime.metrics

    def set_tracer(self, tracer) -> None:
        self.runtime.set_tracer(tracer)

    # -- slots --------------------------------------------------------------

    def slot_of(self, key: int) -> int:
        """Heap offset of ``key``'s slot (assigned on first placement)."""
        offset = self.slots.get(key)
        if offset is None:
            offset = len(self.slots) * SLOT_BYTES
            if offset + SLOT_BYTES > self.config.shard_heap_bytes:
                raise RuntimeConfigError(
                    f"shard {self.shard_id} heap exhausted at key {key}"
                )
            self.slots[key] = offset
        return offset

    def drop_key(self, key: int) -> None:
        """Forget a key that moved away (its slot is not reused)."""
        self.slots.pop(key, None)
        self.store.pop(key, None)
        self.tags.pop(key, None)

    def version_of(self, key: int) -> int:
        """The write version this replica holds (0 = seeded default)."""
        tag = self.tags.get(key)
        return tag.version if tag is not None else 0

    def tag_of(self, key: int) -> ReplicaTag:
        tag = self.tags.get(key)
        return tag if tag is not None else initial_tag(key)

    def apply_write(self, key: int, value: int, tag: ReplicaTag) -> bool:
        """Apply a replicated write to durable state; False = unreachable."""
        if self.lost or self.partitioned:
            return False
        self.store[key] = value
        self.tags[key] = tag
        return True

    # -- the service path ---------------------------------------------------

    def service(self, key: int, kind: AccessKind, tenant: int) -> float:
        """One request against this far node; returns service cycles."""
        offset = self.slot_of(key)
        runtime = self.runtime
        if self.config.runtime == "hybrid":
            if offset < self._obj_half:
                cycles = runtime.access(self._obj_handle, offset, kind, SLOT_BYTES)
            else:
                cycles = runtime.access(
                    self._page_handle, offset - self._obj_half, kind, SLOT_BYTES
                )
        elif self.config.runtime in ("trackfm", "adaptive"):
            cycles = runtime.access(self._base + offset, kind, SLOT_BYTES)
        else:
            cycles = runtime.access(self._base + offset, kind, size=SLOT_BYTES)
        cycles += self._enforce_quota(tenant, offset)
        return cycles

    # -- tenant quotas ------------------------------------------------------

    def _enforce_quota(self, tenant: int, offset: int) -> float:
        quota = self.config.tenant_quota_objects
        pool = self.pool
        if quota is None or pool is None:
            return 0.0
        if self.config.runtime == "hybrid" and offset >= self._obj_half:
            # Page-tier slots have no per-tenant view (kernel paging).
            return 0.0
        obj_id = offset // self.config.object_size
        previous = self._obj_tenant.get(obj_id)
        if previous is not None and previous != tenant:
            self._tenant_lru.get(previous, OrderedDict()).pop(obj_id, None)
        self._obj_tenant[obj_id] = tenant
        lru = self._tenant_lru.setdefault(tenant, OrderedDict())
        lru.pop(obj_id, None)
        lru[obj_id] = None
        cycles = 0.0
        while len(lru) > quota:
            victim, _ = lru.popitem(last=False)
            self._obj_tenant.pop(victim, None)
            cycles += pool.expel(victim)
        return cycles

    def tenant_residency(self, tenant: int) -> int:
        """Objects currently attributed to ``tenant`` (quota view)."""
        return len(self._tenant_lru.get(tenant, ()))

    # -- fault domain -------------------------------------------------------

    def remote_backends(self) -> tuple:
        return self.runtime.remote_backends()

    def knock_out(self) -> None:
        """Arm a dead fault schedule on every link of this shard.

        The heartbeat channel goes dark too: suspicion is a consequence
        of the loss (missed probes), not an oracle flag the detector
        reads.
        """
        dead = FaultPlan(seed=self.shard_id ^ 0xDEAD, drop_rate=1.0)
        for backend in self.remote_backends():
            backend.link.faults = dead.schedule()
        self.heartbeat.down = True
        self.lost = True

    def partition(self) -> None:
        """Drop every data link, reversibly; heartbeats stay up.

        Models a gray failure: the node answers control-plane probes
        but its data path is unreachable, so the detector never fires,
        writes stop landing here, and the replica goes stale until
        :meth:`heal` + anti-entropy reconcile it.
        """
        if self.lost:
            raise RuntimeConfigError(f"shard {self.shard_id} is lost, not partitionable")
        if self.partitioned:
            raise RuntimeConfigError(f"shard {self.shard_id} already partitioned")
        backends = self.remote_backends()
        self._saved_faults = [backend.link.faults for backend in backends]
        cut = FaultPlan(seed=self.shard_id ^ 0x9A97, drop_rate=1.0)
        for backend in backends:
            backend.link.faults = cut.schedule()
        self.partitioned = True

    def heal(self) -> None:
        """Restore the data links a :meth:`partition` cut."""
        if not self.partitioned:
            raise RuntimeConfigError(f"shard {self.shard_id} is not partitioned")
        for backend, faults in zip(self.remote_backends(), self._saved_faults or ()):
            backend.link.faults = faults
        self._saved_faults = None
        self.partitioned = False

    def record_latency(self, latency_cycles: float) -> None:
        self.requests += 1
        self.latency.record(latency_cycles)


@dataclass
class RequestResult:
    """What one served request did."""

    shard_id: int
    value: int
    service_cycles: float
    degraded: bool
    #: Replication view (replicated clusters only; R=1 keeps defaults).
    #: Version tag the request committed/observed.
    version: int = 0
    #: Replicas that durably applied a write (reads: replicas consulted).
    acks: int = 0


@dataclass
class ClusterStats:
    """Cluster-level event counters (shard metrics live on the shards)."""

    requests: int = 0
    degraded_requests: int = 0
    lost_shards: int = 0
    rebalances: int = 0
    #: Keys re-seeded from initial values after a loss.  Unreplicated
    #: clusters re-seed every lost key; replicated ones only when *all*
    #: replicas of a key died — the chaos suite pins this at 0 for R>=2
    #: single-shard knockouts.
    reseeded_keys: int = 0
    #: Keys migrated survivor → survivor through the evacuator (joins).
    migrated_keys: int = 0
    migration_cycles: float = 0.0
    #: Replication counters — serialized sparsely (only when nonzero)
    #: so unreplicated reports keep their historical exact form.
    #: Dead shards failed over (surviving replicas promoted).
    failovers: int = 0
    #: Replica copies materialized on new replica-set members at failover.
    promoted_keys: int = 0
    #: Stale replicas reconciled by anti-entropy sweeps.
    healed_stale_replicas: int = 0
    #: Gray partitions injected (data links cut, heartbeats alive).
    partitions: int = 0

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "requests": self.requests,
            "degraded_requests": self.degraded_requests,
            "lost_shards": self.lost_shards,
            "rebalances": self.rebalances,
            "reseeded_keys": self.reseeded_keys,
            "migrated_keys": self.migrated_keys,
            "migration_cycles": self.migration_cycles,
        }
        for key in (
            "failovers",
            "promoted_keys",
            "healed_stale_replicas",
            "partitions",
        ):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out


class ShardedCluster:
    """N shards behind one consistent-hash ring."""

    def __init__(self, config: ClusterConfig, tracer=None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.shards: Dict[int, Shard] = {
            sid: Shard(sid, config) for sid in range(config.n_shards)
        }
        self.ring = HashRing(
            sorted(self.shards), vnodes=config.vnodes, seed=config.seed
        )
        #: Cached placement (kept exactly consistent with the ring).
        self._owner: Dict[int, int] = {}
        #: Cached replica sets (replicated clusters; primary first).
        self._replica_sets: Dict[int, Tuple[int, ...]] = {}
        self.stats = ClusterStats()
        self._next_shard_id = config.n_shards
        self.detector: Optional[FailureDetector] = None
        if config.replicated:
            self._write_quorum, self._read_quorum = config.quorums
            self.detector = FailureDetector(config.suspicion_threshold)
            for sid, shard in sorted(self.shards.items()):
                self.detector.watch(sid, shard.heartbeat)
        if tracer is not None:
            self.set_tracer(tracer)

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        for shard in self.shards.values():
            shard.set_tracer(tracer)

    # -- placement ----------------------------------------------------------

    def place(self, key: int) -> int:
        if self.config.replicated:
            return self.replicas(key)[0]
        sid = self._owner.get(key)
        if sid is None:
            sid = self.ring.place(key)
            self._owner[key] = sid
        return sid

    def replicas(self, key: int) -> Tuple[int, ...]:
        """The key's replica set (primary first), cached like ``place``."""
        reps = self._replica_sets.get(key)
        if reps is None:
            reps = self.ring.place_n(key, self.config.replication)
            self._replica_sets[key] = reps
            self._owner[key] = reps[0]
        return reps

    def live_shards(self) -> List[int]:
        return [sid for sid, shard in sorted(self.shards.items()) if not shard.lost]

    def _routable(self, replicas: Iterable[int]) -> List[int]:
        """Replicas requests are sent to: the not-yet-suspected ones.

        Before the failure detector fires, a dead replica is still
        routed to (and pays degraded service) — suspicion, not an
        oracle, is what removes it from the request path.
        """
        suspected = self.detector.suspected if self.detector is not None else ()
        routable = [sid for sid in replicas if sid not in suspected]
        return routable if routable else list(replicas)

    # -- the request path ---------------------------------------------------

    def serve(self, key: int, tenant: int = 0, write: bool = False) -> RequestResult:
        """Serve one request; returns value + service cycles.

        Never raises for a lost shard: the shard's runtime runs in
        degraded mode, so the request completes with a stall and is
        counted in ``degraded_accesses`` (reads are stale, writes are
        not durable — they die with the shard at rebalance).
        """
        if key < 0 or key >= self.config.n_keys:
            raise RuntimeConfigError(
                f"key {key} outside [0, {self.config.n_keys})"
            )
        if self.config.replicated:
            return self._serve_replicated(key, tenant, write)
        sid = self.place(key)
        shard = self.shards[sid]
        kind = AccessKind.WRITE if write else AccessKind.READ
        degraded_before = shard.metrics.degraded_accesses
        cycles = shard.service(key, kind, tenant)
        # Degraded = the request could not use the far node as intended:
        # its remote path fell back locally (counted by the runtime), or
        # it was a write to a lost shard (acknowledged, not durable).
        # A read that hits host-local residency is *correct* even while
        # the far node is down — not degraded.
        degraded = shard.metrics.degraded_accesses > degraded_before or (
            shard.lost and write
        )
        previous = shard.store.get(key, default_value(key))
        if write:
            value = next_value(key, previous)
            if not shard.lost:
                shard.store[key] = value
            # A degraded write is acknowledged but not durable: the
            # shard's (unreachable) store keeps the old value.
        else:
            value = previous
        self.stats.requests += 1
        if degraded:
            self.stats.degraded_requests += 1
        return RequestResult(sid, value, cycles, degraded)

    # -- the replicated request path -----------------------------------------

    def _freshest(self, key: int, shard_ids: Iterable[int]) -> Tuple[int, int, ReplicaTag]:
        """``(shard, value, tag)`` of the max-version copy among
        ``shard_ids`` (ties broken by iteration order — replica order,
        so two runs always agree)."""
        best_sid = -1
        best_value = 0
        best_tag: Optional[ReplicaTag] = None
        for sid in shard_ids:
            shard = self.shards[sid]
            tag = shard.tag_of(key)
            if best_tag is None or tag.version > best_tag.version:
                best_sid = sid
                best_value = shard.store.get(key, default_value(key))
                best_tag = tag
        if best_tag is None:
            return -1, default_value(key), initial_tag(key)
        return best_sid, best_value, best_tag

    def _serve_replicated(self, key: int, tenant: int, write: bool) -> RequestResult:
        """Quorum write / quorum read over the key's replica set.

        Writes go to every routable replica with a bumped version tag;
        the write is *committed* once ``write_quorum`` replicas durably
        applied it (fewer = the request is degraded: acknowledged below
        quorum).  Reads consult the first ``read_quorum`` routable
        replicas, return the max-version value, and heal stale quorum
        members inline (read repair).
        """
        reps = self.replicas(key)
        routable = self._routable(reps)
        coordinator = routable[0]
        cycles = 0.0
        degraded = False
        if write:
            _src, prev_value, prev_tag = self._freshest(key, reps)
            value = next_value(key, prev_value)
            tag = ReplicaTag.at(key, prev_tag.version + 1)
            acks = 0
            for sid in routable:
                shard = self.shards[sid]
                before = shard.metrics.degraded_accesses
                cycles += shard.service(key, AccessKind.WRITE, tenant)
                if shard.metrics.degraded_accesses > before or shard.lost:
                    degraded = True
                if shard.apply_write(key, value, tag):
                    acks += 1
                    if sid != coordinator:
                        shard.metrics.replica_writes += 1
            if acks < min(self._write_quorum, len(reps)):
                degraded = True
            version = tag.version
        else:
            targets = routable[: self._read_quorum]
            for sid in targets:
                shard = self.shards[sid]
                before = shard.metrics.degraded_accesses
                cycles += shard.service(key, AccessKind.READ, tenant)
                if shard.metrics.degraded_accesses > before:
                    degraded = True
            self.shards[coordinator].metrics.quorum_reads += 1
            _src, value, tag = self._freshest(key, targets)
            version = tag.version
            acks = len(targets)
            # Read repair: stale quorum members adopt the winner.
            for sid in targets:
                shard = self.shards[sid]
                if shard.version_of(key) < version and shard.apply_write(key, value, tag):
                    shard.metrics.read_repairs += 1
                    tracer = self.tracer
                    if tracer.enabled:
                        tracer.replica(
                            "read_repair", self._now(),
                            key=key, shard=sid, version=version,
                        )
        self.stats.requests += 1
        if degraded:
            self.stats.degraded_requests += 1
        return RequestResult(coordinator, value, cycles, degraded, version, acks)

    def read_value(self, key: int) -> int:
        """The durable value of ``key`` right now (no cost accounting).

        Replicated clusters answer with the freshest *reachable* copy
        (max version over non-lost replicas); unreplicated ones read
        the owner's store, exactly as before.
        """
        if self.config.replicated:
            reps = self.replicas(key)
            reachable = [sid for sid in reps if not self.shards[sid].lost]
            _sid, value, _tag = self._freshest(key, reachable or reps)
            return value
        shard = self.shards[self.place(key)]
        return shard.store.get(key, default_value(key))

    # -- chaos: loss, rebalance, join ---------------------------------------

    def lose_shard(self, shard_id: int) -> None:
        """The far node behind ``shard_id`` stops answering, mid-run."""
        shard = self.shards.get(shard_id)
        if shard is None or shard.lost:
            raise RuntimeConfigError(f"shard {shard_id} not live")
        if len(self.live_shards()) <= 1:
            raise RuntimeConfigError("cannot lose the last live shard")
        shard.knock_out()
        self.stats.lost_shards += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.serve("shard_lost", self._now(), shard=shard_id)

    def rebalance(self) -> int:
        """Remove lost shards from the ring; recover their keys.

        Unreplicated clusters re-place every lost-shard key on a
        survivor and re-seed it from its initial value — the write
        history dies with the shard.  Replicated clusters fail over
        instead: surviving replicas are promoted losslessly (zero
        re-seeds while any replica of each key survives); see
        :meth:`failover`.  Returns the number of keys whose placement
        moved.
        """
        lost = [sid for sid, shard in self.shards.items() if shard.lost and sid in self.ring]
        if self.config.replicated:
            if not lost:
                return 0
            moved = self.failover(lost)
            self.stats.rebalances += 1
            return moved
        moved = 0
        for sid in lost:
            self.ring.remove_shard(sid)
            dead = self.shards[sid]
            for key, owner in list(self._owner.items()):
                if owner != sid:
                    continue
                new_sid = self.ring.place(key)
                self._owner[key] = new_sid
                dead.drop_key(key)
                # Re-seeded: the new shard starts from the key's initial
                # value; its slot is assigned on first touch (remote).
                moved += 1
        self.stats.reseeded_keys += moved
        if lost:
            self.stats.rebalances += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.serve(
                    "rebalance", self._now(),
                    removed=sorted(lost), reseeded=moved,
                )
        return moved

    def failover(self, shard_ids: Iterable[int]) -> int:
        """Remove dead shards from the ring and promote surviving replicas.

        For every key whose replica set intersected the dead set, the
        freshest *reachable* surviving copy (max version tag, verified
        against the integrity checksum) is copied onto the set's new
        members — lossless, so ``reseeded_keys`` stays untouched.  Only
        when every replica of a key died does the key re-seed from its
        initial value.  Keys whose replica sets did not contain a dead
        shard keep their sets verbatim (the :meth:`HashRing.place_n`
        leave law).  Returns the number of keys whose set changed.
        """
        if not self.config.replicated:
            raise RuntimeConfigError("failover requires a replicated cluster")
        dead = sorted({sid for sid in shard_ids if sid in self.ring})
        if not dead:
            return 0
        if len(self.ring) - len(dead) < 1:
            raise RuntimeConfigError("cannot fail over every ring member")
        for sid in dead:
            self.ring.remove_shard(sid)
            if self.detector is not None:
                # Routed around from now on, even if suspicion was a
                # false positive on a lossy control plane.
                self.detector.suspected.add(sid)
        dead_set = set(dead)
        moved = 0
        promoted = 0
        reseeded = 0
        for key in sorted(self._replica_sets):
            old = self._replica_sets[key]
            if not dead_set.intersection(old):
                continue
            new = self.ring.place_n(key, self.config.replication)
            self._replica_sets[key] = new
            self._owner[key] = new[0]
            moved += 1
            survivors = [
                sid for sid in old
                if sid not in dead_set
                and not self.shards[sid].lost
                and not self.shards[sid].partitioned
            ]
            if survivors:
                _src, value, tag = self._freshest(key, survivors)
                if not tag.verify(key):
                    raise DataIntegrityError(
                        f"replica tag for key {key} failed verification at failover",
                        obj_id=key,
                    )
                for sid in new:
                    if sid in old:
                        continue
                    if self.shards[sid].apply_write(key, value, tag):
                        promoted += 1
            else:
                # Every replica died: the write history is gone.
                reseeded += 1
            for sid in old:
                if sid in dead_set:
                    self.shards[sid].drop_key(key)
        self.stats.failovers += len(dead)
        self.stats.promoted_keys += promoted
        self.stats.reseeded_keys += reseeded
        live = self.live_shards()
        if live:
            self.shards[live[0]].metrics.failovers += len(dead)
        tracer = self.tracer
        if tracer.enabled:
            tracer.replica(
                "failover", self._now(),
                removed=dead, moved=moved, promoted=promoted, reseeded=reseeded,
            )
        return moved

    def anti_entropy(self) -> int:
        """One reconciliation sweep: heal every stale reachable replica.

        For each key, the freshest reachable copy (not lost, not
        partitioned) wins; lower-versioned reachable replicas adopt its
        value and tag.  Idempotent — a second sweep with no intervening
        writes heals nothing.  Returns the number of replicas healed.
        """
        if not self.config.replicated:
            return 0
        healed = 0
        for key in range(self.config.n_keys):
            reps = self.replicas(key)
            reachable = [
                sid for sid in reps
                if not self.shards[sid].lost and not self.shards[sid].partitioned
            ]
            if not reachable:
                continue
            _src, value, tag = self._freshest(key, reachable)
            if tag.version == 0:
                continue  # nothing written: every replica is at the seed
            if not tag.verify(key):
                raise DataIntegrityError(
                    f"replica tag for key {key} failed verification in anti-entropy",
                    obj_id=key,
                )
            for sid in reachable:
                shard = self.shards[sid]
                if shard.version_of(key) < tag.version and shard.apply_write(
                    key, value, tag
                ):
                    healed += 1
                    shard.metrics.stale_replicas_healed += 1
        if healed:
            self.stats.healed_stale_replicas += healed
        tracer = self.tracer
        if tracer.enabled:
            tracer.replica("anti_entropy", self._now(), healed=healed)
        return healed

    def partition_shard(self, shard_id: int) -> None:
        """Cut a shard's data links, reversibly; its heartbeats stay up.

        The gray-failure regime: the detector never fires, so the
        replica silently goes stale until :meth:`heal_shard` restores
        the links and :meth:`anti_entropy` reconciles it.
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise RuntimeConfigError(f"shard {shard_id} does not exist")
        shard.partition()
        self.stats.partitions += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.replica("partition", self._now(), shard=shard_id)

    def heal_shard(self, shard_id: int) -> None:
        """Restore the data links :meth:`partition_shard` cut."""
        shard = self.shards.get(shard_id)
        if shard is None:
            raise RuntimeConfigError(f"shard {shard_id} does not exist")
        shard.heal()
        tracer = self.tracer
        if tracer.enabled:
            tracer.replica("heal", self._now(), shard=shard_id)

    def tick(self) -> List[int]:
        """One failure-detector round: probe every heartbeat channel.

        Newly suspected shards (``suspicion_threshold`` consecutive
        missed probes) are failed over immediately when
        ``auto_failover`` is set — unless that would empty the ring, in
        which case suspicion stands but the ring is left alone.
        Returns the newly suspected shard ids.
        """
        if self.detector is None:
            return []
        newly = self.detector.tick()
        if newly:
            tracer = self.tracer
            if tracer.enabled:
                tracer.replica("suspect", self._now(), shards=list(newly))
            if self.config.auto_failover:
                in_ring = [sid for sid in newly if sid in self.ring]
                if in_ring and len(self.ring) - len(in_ring) >= 1:
                    self.failover(in_ring)
        return newly

    def join_shard(self) -> int:
        """Bring up a fresh shard and migrate its keys onto it.

        Keys whose placement moves (consistent hashing: all of them
        move *to* the new shard) are migrated: values are copied over,
        and slots resident in a surviving source pool are expelled
        through the source's evacuator (dirty ones pay a writeback).
        Returns the new shard id.
        """
        sid = self._next_shard_id
        self._next_shard_id += 1
        shard = Shard(sid, self.config)
        if self.tracer is not NULL_TRACER:
            shard.set_tracer(self.tracer)
        self.shards[sid] = shard
        self.ring.add_shard(sid)
        if self.detector is not None:
            self.detector.watch(sid, shard.heartbeat)
        migrated = 0
        cycles = 0.0
        if self.config.replicated:
            # Replica-set migration: a set that adopts the joiner copies
            # the freshest verified surviving value onto it and evicts
            # at most one old member (the place_n join law); sets that
            # did not adopt it are untouched.
            for key in sorted(self._replica_sets):
                old = self._replica_sets[key]
                new = self.ring.place_n(key, self.config.replication)
                if set(new) == set(old):
                    self._replica_sets[key] = new
                    self._owner[key] = new[0]
                    continue
                sources = [
                    s for s in old
                    if not self.shards[s].lost and not self.shards[s].partitioned
                ]
                _src, value, tag = self._freshest(key, sources or old)
                for member in new:
                    if member not in old:
                        self.shards[member].apply_write(key, value, tag)
                for member in old:
                    if member in new:
                        continue
                    source = self.shards[member]
                    pool = source.pool
                    slot = source.slots.get(key)
                    if pool is not None and slot is not None and not source.lost:
                        cycles += pool.expel(slot // self.config.object_size)
                    source.drop_key(key)
                self._replica_sets[key] = new
                self._owner[key] = new[0]
                migrated += 1
        else:
            for key, owner in list(self._owner.items()):
                new_sid = self.ring.place(key)
                if new_sid == owner:
                    continue
                source = self.shards[owner]
                # Copy the durable value, then evacuate the source slot.
                shard.store[key] = source.store.get(key, default_value(key))
                pool = source.pool
                slot = source.slots.get(key)
                if pool is not None and slot is not None and not source.lost:
                    cycles += pool.expel(slot // self.config.object_size)
                source.drop_key(key)
                self._owner[key] = new_sid
                migrated += 1
        self.stats.migrated_keys += migrated
        self.stats.migration_cycles += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.serve("join", self._now(), shard=sid, migrated=migrated)
        return sid

    # -- aggregation --------------------------------------------------------

    def merged_metrics(self) -> Metrics:
        """All shards' counters folded into one sparse bundle."""
        return Metrics.aggregate(
            shard.metrics for _sid, shard in sorted(self.shards.items())
        )

    def merged_latency(self) -> StreamingHistogram:
        """Global latency distribution: per-shard histograms merged."""
        merged = StreamingHistogram()
        for _sid, shard in sorted(self.shards.items()):
            merged.merge(shard.latency)
        return merged

    def values_checksum(self) -> int:
        """Digest of every key's durable value (ordered by key)."""
        acc = 0xCBF29CE484222325
        for key in range(self.config.n_keys):
            acc = ((acc ^ self.read_value(key)) * 0x100000001B3) & _MASK64
        return acc

    def _now(self) -> float:
        return max(
            (shard.metrics.cycles for shard in self.shards.values()), default=0.0
        )
