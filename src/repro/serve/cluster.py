"""The sharded cluster: one logical object pool across N far nodes.

Each shard is a complete far-memory stack — its own runtime (any of the
four models), its own :class:`~repro.net.backends.RemoteBackend` with a
private retry policy and circuit breaker, its own metrics bundle and
latency histogram.  Nothing mutable is shared between shards, which is
what makes a shard an *independent fault domain*: arming a dead fault
schedule on shard 3's link (``lose_shard``) trips only shard 3's
breaker, degrades only shard 3's requests, and leaves the other shards'
deterministic schedules untouched.

Keys are placed by the consistent-hash ring (``repro.serve.ring``);
each shard lazily assigns arriving keys to slots in its own heap, so a
shard only pays local-memory pressure for keys it actually owns.

**Data semantics.**  Each shard's key-value store models the far node's
durable contents.  Losing a shard loses its data: requests for its keys
are served *degraded* (stale reads, non-durable writes — counted in
``degraded_accesses``) until ``rebalance()`` removes it from the ring
and re-seeds its keys onto survivors from their initial values
(restore from a cold replica).  Keys on surviving shards never notice:
the chaos suite pins that their values are bit-identical to a
fault-free run.  Joining a shard moves keys *to* it; moved keys that
are resident on a surviving source are migrated through the source
pool's evacuator (dirty ones cross the wire).

**Tenant quotas.**  Per-tenant local-memory quotas bound how much of a
shard's residency one tenant can hold: when a tenant exceeds its
object budget, its least-recently-used object is expelled through the
evacuator.  Quotas apply to object-granular tiers (AIFM, TrackFM, the
hybrid's object side); the kernel-paging tier has no per-tenant view,
exactly as a real cgroup-per-machine deployment would.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import RuntimeConfigError
from repro.machine.costs import AccessKind
from repro.net.backends import make_shard_backend
from repro.net.faults import FaultPlan
from repro.sim.metrics import Metrics
from repro.trace.histogram import StreamingHistogram
from repro.trace.tracer import NULL_TRACER
from repro.serve.ring import HashRing, _splitmix64
from repro.units import BASE_PAGE, KB, align_up

#: Bytes per key slot (one 64-bit value per key).
SLOT_BYTES = 8

#: Stall charged per degraded access on a lost shard (same knob as the
#: trace drivers' degraded mode).
DEGRADED_STALL_CYCLES = 1_000.0

_MASK64 = (1 << 64) - 1

RUNTIME_KINDS = ("aifm", "trackfm", "fastswap", "hybrid", "adaptive")


def default_value(key: int) -> int:
    """The value every key starts with (and re-seeds to after data loss)."""
    return _splitmix64((key << 8) ^ 0xD1CE) & 0x7FFFFFFF


def next_value(key: int, previous: int) -> int:
    """The value after one write — pure in ``(key, previous)``, so a
    key's value is a function of how many writes reached durable state."""
    return (previous * 1009 + key + 1) & 0x7FFFFFFF


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and policy for one sharded serving cluster."""

    n_shards: int
    #: Distinct keys the cluster serves.
    n_keys: int
    #: Which runtime model each shard runs (``RUNTIME_KINDS``).
    runtime: str = "aifm"
    #: AIFM object size within each shard's pool.
    object_size: int = 256
    #: Local memory per shard (the constraint quotas carve up).
    local_memory: int = 8 * KB
    #: Per-tenant residency budget in bytes per shard (None = no quota).
    tenant_quota_bytes: Optional[int] = None
    #: Virtual nodes per shard on the placement ring.
    vnodes: int = 128
    seed: int = 0
    #: Optional base fault plan; each shard replays it under its own
    #: derived seed (independent fault domains).
    fault_plan: Optional[FaultPlan] = None
    degraded_stall_cycles: float = DEGRADED_STALL_CYCLES

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise RuntimeConfigError("n_shards must be >= 1")
        if self.n_keys < 1:
            raise RuntimeConfigError("n_keys must be >= 1")
        if self.runtime not in RUNTIME_KINDS:
            raise RuntimeConfigError(
                f"unknown runtime kind {self.runtime!r}; have {RUNTIME_KINDS}"
            )
        if self.tenant_quota_bytes is not None and self.tenant_quota_bytes < self.object_size:
            raise RuntimeConfigError("tenant quota smaller than one object")

    @property
    def shard_heap_bytes(self) -> int:
        """Each shard's heap must be able to host *every* key: after
        enough losses one survivor may own the whole keyspace."""
        return align_up(max(self.n_keys * SLOT_BYTES, self.object_size), self.object_size)

    @property
    def tenant_quota_objects(self) -> Optional[int]:
        if self.tenant_quota_bytes is None:
            return None
        return max(1, self.tenant_quota_bytes // self.object_size)


class Shard:
    """One far node: a runtime, its fault domain, and its key slots."""

    def __init__(self, shard_id: int, config: ClusterConfig) -> None:
        self.shard_id = shard_id
        self.config = config
        self.lost = False
        #: key -> heap offset of its slot in this shard's heap.
        self.slots: Dict[int, int] = {}
        #: The far node's durable contents (key -> value).
        self.store: Dict[int, int] = {}
        #: End-to-end request latency (queue wait + service), cycles.
        self.latency = StreamingHistogram()
        self.requests = 0
        #: Per-tenant residency tracking for quota enforcement:
        #: obj -> owning tenant, and per tenant an LRU of its objects.
        self._obj_tenant: Dict[int, int] = {}
        self._tenant_lru: Dict[int, OrderedDict] = {}
        self._build_runtime()

    # -- runtime adapters ---------------------------------------------------

    def _build_runtime(self) -> None:
        config = self.config
        plan = config.fault_plan
        heap = config.shard_heap_bytes
        if config.runtime == "aifm":
            from repro.aifm.pool import PoolConfig
            from repro.aifm.runtime import AIFMRuntime

            self.runtime = AIFMRuntime(
                PoolConfig(
                    object_size=config.object_size,
                    local_memory=config.local_memory,
                    heap_size=heap,
                ),
                backend=make_shard_backend("tcp", self.shard_id, plan),
            )
            self.runtime.allocate(heap)
            self._base = 0
        elif config.runtime == "trackfm":
            from repro.aifm.pool import PoolConfig
            from repro.trackfm.runtime import TrackFMRuntime

            self.runtime = TrackFMRuntime(
                PoolConfig(
                    object_size=config.object_size,
                    local_memory=config.local_memory,
                    heap_size=heap,
                ),
                backend=make_shard_backend("tcp", self.shard_id, plan),
            )
            self._base = self.runtime.tfm_malloc(heap)
        elif config.runtime == "fastswap":
            from repro.fastswap.runtime import FastswapConfig, FastswapRuntime

            # The kernel-paging tier needs at least one page of both
            # local memory and heap, whatever the cluster sizing says.
            page_heap = max(heap, BASE_PAGE)
            self.runtime = FastswapRuntime(
                FastswapConfig(
                    local_memory=max(config.local_memory, BASE_PAGE),
                    heap_size=page_heap,
                ),
                backend=make_shard_backend("rdma", self.shard_id, plan),
            )
            self._base = self.runtime.allocate(heap)
        elif config.runtime == "adaptive":
            from repro.hybrid.runtime import AdaptiveHybridRuntime

            # A TrackFM-shaped shard whose guards route per-region: the
            # selector moves hot slot regions onto the page tier online.
            self.runtime = AdaptiveHybridRuntime(
                local_memory=max(config.local_memory, 2 * BASE_PAGE),
                heap_size=max(heap, BASE_PAGE),
                object_size=config.object_size,
                object_backend=make_shard_backend("tcp", self.shard_id, plan),
                page_backend=make_shard_backend("rdma", self.shard_id, plan),
            )
            self._base = self.runtime.tfm_malloc(heap)
        else:  # hybrid
            from repro.hybrid.runtime import HybridRuntime, Placement

            page_heap = max(heap, BASE_PAGE)
            self.runtime = HybridRuntime(
                local_memory=max(config.local_memory, 2 * BASE_PAGE),
                heap_size=page_heap,
                object_size=config.object_size,
                object_backend=make_shard_backend("tcp", self.shard_id, plan),
                page_backend=make_shard_backend("rdma", self.shard_id, plan),
            )
            half = max(config.object_size, align_up(heap // 2, config.object_size))
            self._obj_handle = self.runtime.allocate(half, Placement.OBJECTS)
            self._page_handle = self.runtime.allocate(max(heap - half, SLOT_BYTES), Placement.PAGES)
            self._obj_half = half
            self._base = 0
        self._enable_degraded()

    def _enable_degraded(self) -> None:
        stall = self.config.degraded_stall_cycles
        runtime = self.runtime
        if self.config.runtime == "hybrid":
            # The object tier's own rung is the page-tier fallback; the
            # page tier still needs a local degraded mode for a total
            # shard outage.
            runtime.fastswap.enable_degraded_mode(stall_cycles=stall)
        else:
            runtime.enable_degraded_mode(stall_cycles=stall)

    @property
    def pool(self):
        """The shard's object pool, if its runtime kind has one."""
        if self.config.runtime in ("aifm", "trackfm", "adaptive"):
            return self.runtime.pool
        if self.config.runtime == "hybrid":
            return self.runtime.trackfm.pool
        return None

    @property
    def metrics(self) -> Metrics:
        return self.runtime.metrics

    def set_tracer(self, tracer) -> None:
        self.runtime.set_tracer(tracer)

    # -- slots --------------------------------------------------------------

    def slot_of(self, key: int) -> int:
        """Heap offset of ``key``'s slot (assigned on first placement)."""
        offset = self.slots.get(key)
        if offset is None:
            offset = len(self.slots) * SLOT_BYTES
            if offset + SLOT_BYTES > self.config.shard_heap_bytes:
                raise RuntimeConfigError(
                    f"shard {self.shard_id} heap exhausted at key {key}"
                )
            self.slots[key] = offset
        return offset

    def drop_key(self, key: int) -> None:
        """Forget a key that moved away (its slot is not reused)."""
        self.slots.pop(key, None)
        self.store.pop(key, None)

    # -- the service path ---------------------------------------------------

    def service(self, key: int, kind: AccessKind, tenant: int) -> float:
        """One request against this far node; returns service cycles."""
        offset = self.slot_of(key)
        runtime = self.runtime
        if self.config.runtime == "hybrid":
            if offset < self._obj_half:
                cycles = runtime.access(self._obj_handle, offset, kind, SLOT_BYTES)
            else:
                cycles = runtime.access(
                    self._page_handle, offset - self._obj_half, kind, SLOT_BYTES
                )
        elif self.config.runtime in ("trackfm", "adaptive"):
            cycles = runtime.access(self._base + offset, kind, SLOT_BYTES)
        else:
            cycles = runtime.access(self._base + offset, kind, size=SLOT_BYTES)
        cycles += self._enforce_quota(tenant, offset)
        return cycles

    # -- tenant quotas ------------------------------------------------------

    def _enforce_quota(self, tenant: int, offset: int) -> float:
        quota = self.config.tenant_quota_objects
        pool = self.pool
        if quota is None or pool is None:
            return 0.0
        if self.config.runtime == "hybrid" and offset >= self._obj_half:
            # Page-tier slots have no per-tenant view (kernel paging).
            return 0.0
        obj_id = offset // self.config.object_size
        previous = self._obj_tenant.get(obj_id)
        if previous is not None and previous != tenant:
            self._tenant_lru.get(previous, OrderedDict()).pop(obj_id, None)
        self._obj_tenant[obj_id] = tenant
        lru = self._tenant_lru.setdefault(tenant, OrderedDict())
        lru.pop(obj_id, None)
        lru[obj_id] = None
        cycles = 0.0
        while len(lru) > quota:
            victim, _ = lru.popitem(last=False)
            self._obj_tenant.pop(victim, None)
            cycles += pool.expel(victim)
        return cycles

    def tenant_residency(self, tenant: int) -> int:
        """Objects currently attributed to ``tenant`` (quota view)."""
        return len(self._tenant_lru.get(tenant, ()))

    # -- fault domain -------------------------------------------------------

    def remote_backends(self) -> tuple:
        return self.runtime.remote_backends()

    def knock_out(self) -> None:
        """Arm a dead fault schedule on every link of this shard."""
        dead = FaultPlan(seed=self.shard_id ^ 0xDEAD, drop_rate=1.0)
        for backend in self.remote_backends():
            backend.link.faults = dead.schedule()
        self.lost = True

    def record_latency(self, latency_cycles: float) -> None:
        self.requests += 1
        self.latency.record(latency_cycles)


@dataclass
class RequestResult:
    """What one served request did."""

    shard_id: int
    value: int
    service_cycles: float
    degraded: bool


@dataclass
class ClusterStats:
    """Cluster-level event counters (shard metrics live on the shards)."""

    requests: int = 0
    degraded_requests: int = 0
    lost_shards: int = 0
    rebalances: int = 0
    #: Keys re-seeded onto survivors after a shard loss (data restored
    #: from initial values — the cold-replica model).
    reseeded_keys: int = 0
    #: Keys migrated survivor → survivor through the evacuator (joins).
    migrated_keys: int = 0
    migration_cycles: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "degraded_requests": self.degraded_requests,
            "lost_shards": self.lost_shards,
            "rebalances": self.rebalances,
            "reseeded_keys": self.reseeded_keys,
            "migrated_keys": self.migrated_keys,
            "migration_cycles": self.migration_cycles,
        }


class ShardedCluster:
    """N shards behind one consistent-hash ring."""

    def __init__(self, config: ClusterConfig, tracer=None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.shards: Dict[int, Shard] = {
            sid: Shard(sid, config) for sid in range(config.n_shards)
        }
        self.ring = HashRing(
            sorted(self.shards), vnodes=config.vnodes, seed=config.seed
        )
        #: Cached placement (kept exactly consistent with the ring).
        self._owner: Dict[int, int] = {}
        self.stats = ClusterStats()
        self._next_shard_id = config.n_shards
        if tracer is not None:
            self.set_tracer(tracer)

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        for shard in self.shards.values():
            shard.set_tracer(tracer)

    # -- placement ----------------------------------------------------------

    def place(self, key: int) -> int:
        sid = self._owner.get(key)
        if sid is None:
            sid = self.ring.place(key)
            self._owner[key] = sid
        return sid

    def live_shards(self) -> List[int]:
        return [sid for sid, shard in sorted(self.shards.items()) if not shard.lost]

    # -- the request path ---------------------------------------------------

    def serve(self, key: int, tenant: int = 0, write: bool = False) -> RequestResult:
        """Serve one request; returns value + service cycles.

        Never raises for a lost shard: the shard's runtime runs in
        degraded mode, so the request completes with a stall and is
        counted in ``degraded_accesses`` (reads are stale, writes are
        not durable — they die with the shard at rebalance).
        """
        if key < 0 or key >= self.config.n_keys:
            raise RuntimeConfigError(
                f"key {key} outside [0, {self.config.n_keys})"
            )
        sid = self.place(key)
        shard = self.shards[sid]
        kind = AccessKind.WRITE if write else AccessKind.READ
        degraded_before = shard.metrics.degraded_accesses
        cycles = shard.service(key, kind, tenant)
        # Degraded = the request could not use the far node as intended:
        # its remote path fell back locally (counted by the runtime), or
        # it was a write to a lost shard (acknowledged, not durable).
        # A read that hits host-local residency is *correct* even while
        # the far node is down — not degraded.
        degraded = shard.metrics.degraded_accesses > degraded_before or (
            shard.lost and write
        )
        previous = shard.store.get(key, default_value(key))
        if write:
            value = next_value(key, previous)
            if not shard.lost:
                shard.store[key] = value
            # A degraded write is acknowledged but not durable: the
            # shard's (unreachable) store keeps the old value.
        else:
            value = previous
        self.stats.requests += 1
        if degraded:
            self.stats.degraded_requests += 1
        return RequestResult(sid, value, cycles, degraded)

    def read_value(self, key: int) -> int:
        """The durable value of ``key`` right now (no cost accounting)."""
        shard = self.shards[self.place(key)]
        return shard.store.get(key, default_value(key))

    # -- chaos: loss, rebalance, join ---------------------------------------

    def lose_shard(self, shard_id: int) -> None:
        """The far node behind ``shard_id`` stops answering, mid-run."""
        shard = self.shards.get(shard_id)
        if shard is None or shard.lost:
            raise RuntimeConfigError(f"shard {shard_id} not live")
        if len(self.live_shards()) <= 1:
            raise RuntimeConfigError("cannot lose the last live shard")
        shard.knock_out()
        self.stats.lost_shards += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.serve("shard_lost", self._now(), shard=shard_id)

    def rebalance(self) -> int:
        """Remove lost shards from the ring; re-seed their keys.

        Keys owned by a lost shard are re-placed on survivors and
        re-seeded from their initial values (cold-replica restore) —
        consistent hashing guarantees no other key moves.  Returns the
        number of re-seeded keys.
        """
        lost = [sid for sid, shard in self.shards.items() if shard.lost and sid in self.ring]
        moved = 0
        for sid in lost:
            self.ring.remove_shard(sid)
            dead = self.shards[sid]
            for key, owner in list(self._owner.items()):
                if owner != sid:
                    continue
                new_sid = self.ring.place(key)
                self._owner[key] = new_sid
                dead.drop_key(key)
                # Re-seeded: the new shard starts from the key's initial
                # value; its slot is assigned on first touch (remote).
                moved += 1
        self.stats.reseeded_keys += moved
        if lost:
            self.stats.rebalances += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.serve(
                    "rebalance", self._now(),
                    removed=sorted(lost), reseeded=moved,
                )
        return moved

    def join_shard(self) -> int:
        """Bring up a fresh shard and migrate its keys onto it.

        Keys whose placement moves (consistent hashing: all of them
        move *to* the new shard) are migrated: values are copied over,
        and slots resident in a surviving source pool are expelled
        through the source's evacuator (dirty ones pay a writeback).
        Returns the new shard id.
        """
        sid = self._next_shard_id
        self._next_shard_id += 1
        shard = Shard(sid, self.config)
        if self.tracer is not NULL_TRACER:
            shard.set_tracer(self.tracer)
        self.shards[sid] = shard
        self.ring.add_shard(sid)
        migrated = 0
        cycles = 0.0
        for key, owner in list(self._owner.items()):
            new_sid = self.ring.place(key)
            if new_sid == owner:
                continue
            source = self.shards[owner]
            # Copy the durable value, then evacuate the source slot.
            shard.store[key] = source.store.get(key, default_value(key))
            pool = source.pool
            slot = source.slots.get(key)
            if pool is not None and slot is not None and not source.lost:
                cycles += pool.expel(slot // self.config.object_size)
            source.drop_key(key)
            self._owner[key] = new_sid
            migrated += 1
        self.stats.migrated_keys += migrated
        self.stats.migration_cycles += cycles
        tracer = self.tracer
        if tracer.enabled:
            tracer.serve("join", self._now(), shard=sid, migrated=migrated)
        return sid

    # -- aggregation --------------------------------------------------------

    def merged_metrics(self) -> Metrics:
        """All shards' counters folded into one sparse bundle."""
        return Metrics.aggregate(
            shard.metrics for _sid, shard in sorted(self.shards.items())
        )

    def merged_latency(self) -> StreamingHistogram:
        """Global latency distribution: per-shard histograms merged."""
        merged = StreamingHistogram()
        for _sid, shard in sorted(self.shards.items()):
            merged.merge(shard.latency)
        return merged

    def values_checksum(self) -> int:
        """Digest of every key's durable value (ordered by key)."""
        acc = 0xCBF29CE484222325
        for key in range(self.config.n_keys):
            acc = ((acc ^ self.read_value(key)) * 0x100000001B3) & _MASK64
        return acc

    def _now(self) -> float:
        return max(
            (shard.metrics.cycles for shard in self.shards.values()), default=0.0
        )
