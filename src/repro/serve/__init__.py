"""``repro.serve``: the sharded multi-far-node serving layer.

One logical object pool spread across N far nodes: consistent-hash
placement (:mod:`~repro.serve.ring`), deterministic open-loop traffic
(:mod:`~repro.serve.traffic`), per-shard fault domains and tenant
quotas (:mod:`~repro.serve.cluster`), quorum replication with failure
detection, lossless failover and anti-entropy repair
(:mod:`~repro.serve.replication`), and a discrete-event simulation
that measures end-to-end latency under load and under shard loss
(:mod:`~repro.serve.simulation`).  See ``docs/serving.md``.
"""

from repro.serve.cluster import (
    ClusterConfig,
    ClusterStats,
    RequestResult,
    Shard,
    ShardedCluster,
    default_value,
    next_value,
)
from repro.serve.replication import (
    FailureDetector,
    HeartbeatChannel,
    ReplicaTag,
    initial_tag,
    resolve_quorums,
)
from repro.serve.ring import HashRing, hash_key, moved_keys, moved_replica_keys
from repro.serve.simulation import (
    CHAOS_ACTIONS,
    ChaosAction,
    ServingReport,
    ServingSimulation,
    run_serving,
)
from repro.serve.traffic import Schedule, TrafficConfig, generate_schedule

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosAction",
    "ClusterConfig",
    "ClusterStats",
    "FailureDetector",
    "HashRing",
    "HeartbeatChannel",
    "ReplicaTag",
    "RequestResult",
    "Schedule",
    "ServingReport",
    "ServingSimulation",
    "Shard",
    "ShardedCluster",
    "TrafficConfig",
    "default_value",
    "generate_schedule",
    "hash_key",
    "initial_tag",
    "moved_keys",
    "moved_replica_keys",
    "next_value",
    "resolve_quorums",
    "run_serving",
]
