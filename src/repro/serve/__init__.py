"""``repro.serve``: the sharded multi-far-node serving layer.

One logical object pool spread across N far nodes: consistent-hash
placement (:mod:`~repro.serve.ring`), deterministic open-loop traffic
(:mod:`~repro.serve.traffic`), per-shard fault domains and tenant
quotas (:mod:`~repro.serve.cluster`), and a discrete-event simulation
that measures end-to-end latency under load and under shard loss
(:mod:`~repro.serve.simulation`).  See ``docs/serving.md``.
"""

from repro.serve.cluster import (
    ClusterConfig,
    ClusterStats,
    RequestResult,
    Shard,
    ShardedCluster,
    default_value,
    next_value,
)
from repro.serve.ring import HashRing, hash_key, moved_keys
from repro.serve.simulation import (
    ChaosAction,
    ServingReport,
    ServingSimulation,
    run_serving,
)
from repro.serve.traffic import Schedule, TrafficConfig, generate_schedule

__all__ = [
    "ChaosAction",
    "ClusterConfig",
    "ClusterStats",
    "HashRing",
    "RequestResult",
    "Schedule",
    "ServingReport",
    "ServingSimulation",
    "Shard",
    "ShardedCluster",
    "TrafficConfig",
    "default_value",
    "generate_schedule",
    "hash_key",
    "moved_keys",
    "next_value",
    "run_serving",
]
