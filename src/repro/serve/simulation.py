"""The discrete-event serving simulation: traffic meets the cluster.

Each shard is modeled as a single-server FIFO queue: a request arriving
at ``t`` starts service at ``max(t, shard.busy_until)``, holds the
shard for its service cycles (runtime access + retries + quota
enforcement + migrations it triggered), and completes when done.
End-to-end latency = queue wait + service — the quantity whose p99
explodes past saturation, which is the whole reason the serving layer
simulates open-loop traffic instead of averaging closed-form costs.

Chaos actions (:class:`ChaosAction`) fire at configured simulated
times, *between* arrivals: a ``lose`` knocks a whole far node out
mid-run (its requests degrade), ``rebalance`` shrinks the ring and
recovers the dead shard's keys (re-seed when unreplicated, lossless
failover when replicated), ``join`` grows the ring and migrates,
``partition``/``heal`` cut and restore one shard's data links (gray
failure), and ``anti_entropy`` forces a reconciliation sweep.  On
replicated clusters the failure detector's heartbeat ticks and the
optional periodic anti-entropy sweep are interleaved with chaos in
simulated-time order.  Everything — arrivals, service costs, fault
schedules, chaos timing — is a pure function of seeds, so the full
:class:`ServingReport` (fingerprints included) is bit-identical across
reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeConfigError
from repro.serve.cluster import ShardedCluster
from repro.serve.traffic import Schedule

_MASK64 = (1 << 64) - 1

#: The percentile summary every serving report carries.
PERCENTILES = (50.0, 95.0, 99.0)


#: Every scripted chaos kind; ``partition``/``heal``/``anti_entropy``
#: are the replicated cluster's gray-failure repertoire.
CHAOS_ACTIONS = ("lose", "rebalance", "join", "partition", "heal", "anti_entropy")


@dataclass(frozen=True)
class ChaosAction:
    """One scripted control-plane event at a simulated time."""

    at_cycles: float
    #: One of :data:`CHAOS_ACTIONS`; ``lose``/``partition``/``heal``
    #: need ``shard``.
    action: str
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in CHAOS_ACTIONS:
            raise RuntimeConfigError(f"unknown chaos action {self.action!r}")
        if self.action in ("lose", "partition", "heal") and self.shard is None:
            raise RuntimeConfigError(f"{self.action!r} needs a shard id")


@dataclass
class ServingReport:
    """Everything one serving run produced, JSON-ready."""

    requests: int
    degraded_requests: int
    makespan_cycles: float
    #: Completed requests per million simulated cycles.
    throughput_per_mcycle: float
    latency_mean: float
    latency_percentiles: Dict[str, float]
    per_shard_requests: Dict[str, int]
    cluster_stats: Dict[str, object]
    metrics: Dict[str, object]
    #: FNV digest over every key's final durable value.
    values_checksum: int
    #: Digest of the arrival schedule that drove the run.
    schedule_fingerprint: int
    #: Digest over every completion (order, value, shard) — the run's
    #: full observable behaviour in one number.
    completions_fingerprint: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "degraded_requests": self.degraded_requests,
            "makespan_cycles": self.makespan_cycles,
            "throughput_per_mcycle": self.throughput_per_mcycle,
            "latency_mean": self.latency_mean,
            "latency_percentiles": dict(self.latency_percentiles),
            "per_shard_requests": dict(self.per_shard_requests),
            "cluster_stats": dict(self.cluster_stats),
            "metrics": dict(self.metrics),
            "values_checksum": self.values_checksum,
            "schedule_fingerprint": self.schedule_fingerprint,
            "completions_fingerprint": self.completions_fingerprint,
        }


@dataclass
class ServingSimulation:
    """Drives one :class:`Schedule` through one :class:`ShardedCluster`."""

    cluster: ShardedCluster
    schedule: Schedule
    chaos: Sequence[ChaosAction] = ()
    #: Per-key final values recorded after the run (chaos comparisons).
    final_values: Dict[int, int] = field(default_factory=dict, init=False)

    def run(self) -> ServingReport:
        cluster = self.cluster
        tracer = cluster.tracer
        actions: List[ChaosAction] = sorted(
            self.chaos, key=lambda a: (a.at_cycles, a.action)
        )
        self._next_action = 0
        # The replicated control plane ticks on simulated time: the
        # failure detector probes every heartbeat interval, and the
        # anti-entropy sweep (when configured) runs on its own cadence.
        # Unreplicated clusters schedule neither, so their runs replay
        # the historical event sequence exactly.
        config = cluster.config
        self._hb_interval = (
            config.heartbeat_interval_cycles if cluster.detector is not None else None
        )
        self._next_hb = self._hb_interval
        self._ae_interval = (
            config.anti_entropy_interval_cycles if config.replicated else None
        )
        self._next_ae = self._ae_interval
        busy_until: Dict[int, float] = {}
        makespan = 0.0
        completions_acc = 0xCBF29CE484222325

        for now, _client, tenant, key, is_write in self.schedule.rows():
            self._control_plane(actions, now)
            sid = cluster.place(key)
            start = max(now, busy_until.get(sid, 0.0))
            result = cluster.serve(key, tenant=tenant, write=is_write)
            completion = start + result.service_cycles
            busy_until[result.shard_id] = completion
            if completion > makespan:
                makespan = completion
            latency = completion - now
            shard = cluster.shards[result.shard_id]
            shard.record_latency(latency)
            completions_acc = (
                (completions_acc ^ (result.value + result.shard_id + (1 if result.degraded else 2)))
                * 0x100000001B3
            ) & _MASK64
            if tracer.enabled:
                tracer.serve(
                    "request",
                    completion,
                    shard=result.shard_id,
                    tenant=tenant,
                    key=key,
                    write=is_write,
                    latency=latency,
                    degraded=result.degraded,
                )

        # Chaos scripted past the last arrival still runs (e.g. a final
        # rebalance whose re-seeding the report must reflect), with the
        # control plane ticking alongside in time order.
        if actions:
            self._control_plane(actions, actions[-1].at_cycles)
        while self._next_action < len(actions):
            self._apply(actions[self._next_action])
            self._next_action += 1
        # Trail the detector past the end of traffic: a knockout near
        # (or after) the last arrival still crosses the suspicion
        # threshold and fails over before the report is cut; then one
        # closing sweep reconciles whatever the run left stale.
        if cluster.detector is not None:
            for _ in range(config.suspicion_threshold):
                cluster.tick()
            if self._ae_interval is not None:
                cluster.anti_entropy()

        for key in range(cluster.config.n_keys):
            self.final_values[key] = cluster.read_value(key)

        merged = cluster.merged_latency()
        stats = cluster.stats
        throughput = (
            stats.requests / makespan * 1e6 if makespan > 0 else 0.0
        )
        return ServingReport(
            requests=stats.requests,
            degraded_requests=stats.degraded_requests,
            makespan_cycles=makespan,
            throughput_per_mcycle=throughput,
            latency_mean=merged.mean,
            latency_percentiles=merged.percentiles(PERCENTILES),
            per_shard_requests={
                str(sid): shard.requests
                for sid, shard in sorted(cluster.shards.items())
            },
            cluster_stats=stats.as_dict(),
            metrics=cluster.merged_metrics().as_dict(),
            values_checksum=cluster.values_checksum(),
            schedule_fingerprint=self.schedule.fingerprint(),
            completions_fingerprint=completions_acc,
        )

    def _control_plane(self, actions: List[ChaosAction], until: float) -> None:
        """Fire chaos, heartbeat ticks and sweeps due by ``until``, in
        time order (ties: chaos, then heartbeat, then sweep)."""
        cluster = self.cluster
        while True:
            best = None  # (time, priority, kind)
            if (
                self._next_action < len(actions)
                and actions[self._next_action].at_cycles <= until
            ):
                best = (actions[self._next_action].at_cycles, 0, "chaos")
            if self._next_hb is not None and self._next_hb <= until:
                cand = (self._next_hb, 1, "hb")
                if best is None or cand < best:
                    best = cand
            if self._next_ae is not None and self._next_ae <= until:
                cand = (self._next_ae, 2, "ae")
                if best is None or cand < best:
                    best = cand
            if best is None:
                return
            kind = best[2]
            if kind == "chaos":
                self._apply(actions[self._next_action])
                self._next_action += 1
            elif kind == "hb":
                cluster.tick()
                self._next_hb += self._hb_interval
            else:
                cluster.anti_entropy()
                self._next_ae += self._ae_interval

    def _apply(self, action: ChaosAction) -> None:
        if action.action == "lose":
            self.cluster.lose_shard(action.shard)
        elif action.action == "rebalance":
            self.cluster.rebalance()
        elif action.action == "join":
            self.cluster.join_shard()
        elif action.action == "partition":
            self.cluster.partition_shard(action.shard)
        elif action.action == "heal":
            self.cluster.heal_shard(action.shard)
        else:
            self.cluster.anti_entropy()


def run_serving(
    cluster: ShardedCluster,
    schedule: Schedule,
    chaos: Sequence[ChaosAction] = (),
) -> Tuple[ServingReport, Dict[int, int]]:
    """One-shot helper: run and return ``(report, final key values)``."""
    sim = ServingSimulation(cluster, schedule, chaos)
    report = sim.run()
    return report, sim.final_values
