"""The discrete-event serving simulation: traffic meets the cluster.

Each shard is modeled as a single-server FIFO queue: a request arriving
at ``t`` starts service at ``max(t, shard.busy_until)``, holds the
shard for its service cycles (runtime access + retries + quota
enforcement + migrations it triggered), and completes when done.
End-to-end latency = queue wait + service — the quantity whose p99
explodes past saturation, which is the whole reason the serving layer
simulates open-loop traffic instead of averaging closed-form costs.

Chaos actions (:class:`ChaosAction`) fire at configured simulated
times, *between* arrivals: a ``lose`` knocks a whole far node out
mid-run (its requests degrade), ``rebalance`` shrinks the ring and
re-seeds the dead shard's keys, ``join`` grows the ring and migrates.
Everything — arrivals, service costs, fault schedules, chaos timing —
is a pure function of seeds, so the full :class:`ServingReport`
(fingerprints included) is bit-identical across reruns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeConfigError
from repro.serve.cluster import ShardedCluster
from repro.serve.traffic import Schedule

_MASK64 = (1 << 64) - 1

#: The percentile summary every serving report carries.
PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class ChaosAction:
    """One scripted control-plane event at a simulated time."""

    at_cycles: float
    #: ``lose`` (needs ``shard``), ``rebalance``, or ``join``.
    action: str
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in ("lose", "rebalance", "join"):
            raise RuntimeConfigError(f"unknown chaos action {self.action!r}")
        if self.action == "lose" and self.shard is None:
            raise RuntimeConfigError("'lose' needs a shard id")


@dataclass
class ServingReport:
    """Everything one serving run produced, JSON-ready."""

    requests: int
    degraded_requests: int
    makespan_cycles: float
    #: Completed requests per million simulated cycles.
    throughput_per_mcycle: float
    latency_mean: float
    latency_percentiles: Dict[str, float]
    per_shard_requests: Dict[str, int]
    cluster_stats: Dict[str, object]
    metrics: Dict[str, object]
    #: FNV digest over every key's final durable value.
    values_checksum: int
    #: Digest of the arrival schedule that drove the run.
    schedule_fingerprint: int
    #: Digest over every completion (order, value, shard) — the run's
    #: full observable behaviour in one number.
    completions_fingerprint: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "degraded_requests": self.degraded_requests,
            "makespan_cycles": self.makespan_cycles,
            "throughput_per_mcycle": self.throughput_per_mcycle,
            "latency_mean": self.latency_mean,
            "latency_percentiles": dict(self.latency_percentiles),
            "per_shard_requests": dict(self.per_shard_requests),
            "cluster_stats": dict(self.cluster_stats),
            "metrics": dict(self.metrics),
            "values_checksum": self.values_checksum,
            "schedule_fingerprint": self.schedule_fingerprint,
            "completions_fingerprint": self.completions_fingerprint,
        }


@dataclass
class ServingSimulation:
    """Drives one :class:`Schedule` through one :class:`ShardedCluster`."""

    cluster: ShardedCluster
    schedule: Schedule
    chaos: Sequence[ChaosAction] = ()
    #: Per-key final values recorded after the run (chaos comparisons).
    final_values: Dict[int, int] = field(default_factory=dict, init=False)

    def run(self) -> ServingReport:
        cluster = self.cluster
        tracer = cluster.tracer
        actions: List[ChaosAction] = sorted(
            self.chaos, key=lambda a: (a.at_cycles, a.action)
        )
        next_action = 0
        busy_until: Dict[int, float] = {}
        makespan = 0.0
        completions_acc = 0xCBF29CE484222325

        for now, _client, tenant, key, is_write in self.schedule.rows():
            while next_action < len(actions) and actions[next_action].at_cycles <= now:
                self._apply(actions[next_action])
                next_action += 1
            sid = cluster.place(key)
            start = max(now, busy_until.get(sid, 0.0))
            result = cluster.serve(key, tenant=tenant, write=is_write)
            completion = start + result.service_cycles
            busy_until[result.shard_id] = completion
            if completion > makespan:
                makespan = completion
            latency = completion - now
            shard = cluster.shards[result.shard_id]
            shard.record_latency(latency)
            completions_acc = (
                (completions_acc ^ (result.value + result.shard_id + (1 if result.degraded else 2)))
                * 0x100000001B3
            ) & _MASK64
            if tracer.enabled:
                tracer.serve(
                    "request",
                    completion,
                    shard=result.shard_id,
                    tenant=tenant,
                    key=key,
                    write=is_write,
                    latency=latency,
                    degraded=result.degraded,
                )

        # Chaos scripted past the last arrival still runs (e.g. a final
        # rebalance whose re-seeding the report must reflect).
        while next_action < len(actions):
            self._apply(actions[next_action])
            next_action += 1

        for key in range(cluster.config.n_keys):
            self.final_values[key] = cluster.read_value(key)

        merged = cluster.merged_latency()
        stats = cluster.stats
        throughput = (
            stats.requests / makespan * 1e6 if makespan > 0 else 0.0
        )
        return ServingReport(
            requests=stats.requests,
            degraded_requests=stats.degraded_requests,
            makespan_cycles=makespan,
            throughput_per_mcycle=throughput,
            latency_mean=merged.mean,
            latency_percentiles=merged.percentiles(PERCENTILES),
            per_shard_requests={
                str(sid): shard.requests
                for sid, shard in sorted(cluster.shards.items())
            },
            cluster_stats=stats.as_dict(),
            metrics=cluster.merged_metrics().as_dict(),
            values_checksum=cluster.values_checksum(),
            schedule_fingerprint=self.schedule.fingerprint(),
            completions_fingerprint=completions_acc,
        )

    def _apply(self, action: ChaosAction) -> None:
        if action.action == "lose":
            self.cluster.lose_shard(action.shard)
        elif action.action == "rebalance":
            self.cluster.rebalance()
        else:
            self.cluster.join_shard()


def run_serving(
    cluster: ShardedCluster,
    schedule: Schedule,
    chaos: Sequence[ChaosAction] = (),
) -> Tuple[ServingReport, Dict[int, int]]:
    """One-shot helper: run and return ``(report, final key values)``."""
    sim = ServingSimulation(cluster, schedule, chaos)
    report = sim.run()
    return report, sim.final_values
