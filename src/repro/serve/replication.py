"""Replication primitives for the sharded serving layer.

Three small pieces, all deterministic:

* :func:`resolve_quorums` — the W/R quorum math.  A key is replicated
  on ``R = min(replication, n_shards)`` distinct shards; a write is
  *committed* once ``W`` replicas applied it, a read consults ``Rq``
  replicas, and ``W + Rq > R`` guarantees every read quorum intersects
  every committed write quorum (pigeonhole), so the max version tag a
  read sees is at least the latest committed one.  Defaults are the
  primary-backup posture: write-all (``W = R``), read-one (``Rq = 1``).
* :class:`ReplicaTag` — the per-key, per-replica version metadata: a
  monotonically increasing write version plus the integrity layer's
  ``object_checksum(key, version)`` tag, carried next to the value so
  failover promotion and anti-entropy can verify what they copy.
* :class:`HeartbeatChannel` / :class:`FailureDetector` — suspicion by
  missed heartbeats instead of an oracle.  Each shard's channel rolls
  probe fates on a splitmix64-reseeded variant of the shard's own
  :class:`~repro.net.faults.FaultPlan` (its own counter, so probes
  never perturb the data links' schedules); ``threshold`` consecutive
  misses mark the shard *suspected*, which is what triggers failover.
  A knocked-out shard's channel goes dark (`down`), so detection is a
  consequence of the loss, not a side channel that knows about it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import RuntimeConfigError
from repro.integrity.checksum import ChecksumCodec
from repro.net.faults import FaultPlan

#: Seed salt separating heartbeat probe rolls from data-link schedules.
HEARTBEAT_SEED_SALT = 0x48B2


def resolve_quorums(
    replication: int,
    write_quorum: Optional[int] = None,
    read_quorum: Optional[int] = None,
) -> Tuple[int, int]:
    """Validated ``(W, Rq)`` for a replication factor.

    Defaults to write-all / read-one; any explicit pair must satisfy
    ``1 <= W <= R``, ``1 <= Rq <= R`` and the intersection condition
    ``W + Rq > R``.
    """
    if replication < 1:
        raise RuntimeConfigError(f"replication must be >= 1, got {replication}")
    w = replication if write_quorum is None else write_quorum
    rq = 1 if read_quorum is None else read_quorum
    if not 1 <= w <= replication:
        raise RuntimeConfigError(
            f"write_quorum must be in [1, {replication}], got {w}"
        )
    if not 1 <= rq <= replication:
        raise RuntimeConfigError(
            f"read_quorum must be in [1, {replication}], got {rq}"
        )
    if w + rq <= replication:
        raise RuntimeConfigError(
            f"quorums must intersect: W + R > N requires {w} + {rq} > {replication}"
        )
    return w, rq


#: One shared codec: replica tags are keyed like the integrity layer's
#: simulated-object tags (seed 0 is the process default there too).
_CODEC = ChecksumCodec(seed=0)


@dataclass(frozen=True)
class ReplicaTag:
    """Version metadata one replica holds for one key."""

    version: int
    checksum: int

    @classmethod
    def at(cls, key: int, version: int) -> "ReplicaTag":
        return cls(version=version, checksum=_CODEC.object_checksum(key, version))

    def verify(self, key: int) -> bool:
        """Does the checksum match ``(key, version)``?  A mismatch means
        a copy path handed over torn metadata — never expected; the
        repair paths assert it before trusting a source replica."""
        return self.checksum == _CODEC.object_checksum(key, self.version)


#: The tag every key starts with (version 0 = the seeded default value).
def initial_tag(key: int) -> ReplicaTag:
    return ReplicaTag.at(key, 0)


class HeartbeatChannel:
    """The control-plane probe channel to one shard.

    Probe fates are rolled on a reseeded variant of the shard's fault
    plan — same loss model as the data links, independent counter — so
    a lossy fabric produces (deterministic) spurious misses the
    suspicion threshold must ride out.  ``down`` is set by knock-out:
    every probe afterwards is missed.
    """

    __slots__ = ("plan", "index", "down")

    def __init__(self, shard_id: int, plan: Optional[FaultPlan]) -> None:
        if plan is not None and not plan.is_noop:
            self.plan: Optional[FaultPlan] = plan.control_variant(
                shard_id, HEARTBEAT_SEED_SALT
            )
        else:
            self.plan = None
        self.index = 0
        self.down = False

    def probe(self) -> bool:
        """One heartbeat round-trip; True = the shard answered."""
        index = self.index
        self.index = index + 1
        if self.down:
            return False
        if self.plan is None:
            return True
        kind, _extra = self.plan.decide(index)
        return kind is None


class FailureDetector:
    """Consecutive-miss suspicion over per-shard heartbeat channels."""

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise RuntimeConfigError(f"suspicion threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.channels: Dict[int, HeartbeatChannel] = {}
        self.misses: Dict[int, int] = {}
        self.suspected: set = set()

    def watch(self, shard_id: int, channel: HeartbeatChannel) -> None:
        self.channels[shard_id] = channel
        self.misses[shard_id] = 0

    def unwatch(self, shard_id: int) -> None:
        self.channels.pop(shard_id, None)
        self.misses.pop(shard_id, None)
        self.suspected.discard(shard_id)

    def is_suspected(self, shard_id: int) -> bool:
        return shard_id in self.suspected

    def tick(self) -> List[int]:
        """Probe every watched shard once; returns newly suspected ids."""
        newly: List[int] = []
        for sid in sorted(self.channels):
            if sid in self.suspected:
                continue
            if self.channels[sid].probe():
                self.misses[sid] = 0
                continue
            self.misses[sid] += 1
            if self.misses[sid] >= self.threshold:
                self.suspected.add(sid)
                newly.append(sid)
        return newly
